#include "sim/sync_engine.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "sim/engine_core.hpp"
#include "support/check.hpp"

namespace rise::sim {

namespace {

class SyncImpl;

class SyncContext final : public CoreContext {
 public:
  SyncContext(SyncImpl& engine, EngineCore& core)
      : CoreContext(core), engine_(engine) {}

  void send(Port p, Message msg) override;
  Time now() const override;
  std::uint64_t local_round() const override;
  void request_tick() override;

 private:
  SyncImpl& engine_;
};

class SyncImpl {
 public:
  SyncImpl(const Instance& instance, const WakeSchedule& schedule,
           std::uint64_t seed, const ProcessFactory& factory,
           const SyncRunLimits& limits, TraceSink* trace, obs::Probe* probe,
           RunWorkspace* workspace)
      : core_(instance, /*tau=*/1, seed, factory, trace, probe, workspace),
        limits_(limits),
        ctx_(*this, core_),
        workspace_(workspace),
        probe_(probe) {
    if (probe_ != nullptr) probe_->set_backend("sync");
    const NodeId n = instance.num_nodes();
    if (workspace_ != nullptr) {
      wake_round_ = std::move(workspace_->wake_round);
      inbox_ = std::move(workspace_->inbox);
      next_inbox_ = std::move(workspace_->next_inbox);
    }
    wake_round_.assign(n, kNever);
    reset_boxes(inbox_, n);
    reset_boxes(next_inbox_, n);
    for (const auto& [t, u] : schedule.wakes) {
      RISE_CHECK(u < n);
      pending_wakes_[t].push_back(u);
    }
  }

  ~SyncImpl() {
    if (workspace_ == nullptr) return;
    workspace_->wake_round = std::move(wake_round_);
    workspace_->inbox = std::move(inbox_);
    workspace_->next_inbox = std::move(next_inbox_);
  }

  RunResult run() {
    const NodeId n = core_.instance().num_nodes();
    Metrics& metrics = core_.result().metrics;
    for (round_ = 0;; ++round_) {
      RISE_CHECK_MSG(round_ <= limits_.max_rounds,
                     "sync engine exceeded max_rounds");
      // 1. Deliver messages sent in the previous round.
      std::swap(inbox_, next_inbox_);
      for (auto& box : next_inbox_) box.clear();

      // 2. Adversary wake-ups scheduled for this round.
      std::vector<NodeId> active;
      std::set<NodeId> adversary_woken;
      if (const auto it = pending_wakes_.find(round_);
          it != pending_wakes_.end()) {
        for (NodeId u : it->second) {
          active.push_back(u);
          adversary_woken.insert(u);
        }
        pending_wakes_.erase(it);
      }
      for (NodeId u = 0; u < n; ++u) {
        if (!inbox_[u].empty()) active.push_back(u);
      }
      for (NodeId u : tick_requests_) active.push_back(u);
      tick_requests_.clear();

      std::sort(active.begin(), active.end());
      active.erase(std::unique(active.begin(), active.end()), active.end());

      if (active.empty()) {
        if (pending_wakes_.empty()) break;  // quiescent
        // Fast-forward idle rounds to the next scheduled wake-up.
        round_ = pending_wakes_.begin()->first - 1;
        continue;
      }

      // 3. Step every active node.
      for (NodeId u : active) {
        ctx_.attach(u);
        if (!core_.is_awake(u)) {
          const WakeCause cause = adversary_woken.count(u)
                                      ? WakeCause::kAdversary
                                      : WakeCause::kMessage;
          // local_round() must read 1 inside on_wake, so set the base first.
          wake_round_[u] = round_;
          core_.mark_awake(u, round_, cause);
          core_.process(u).on_wake(ctx_, cause);
          ctx_.attach(u);  // on_wake may not change it, but be explicit
        }
        if (!inbox_[u].empty()) {
          core_.account_delivery(u, round_, inbox_[u].size());
        }
        core_.process(u).on_round(ctx_, inbox_[u]);
        inbox_[u].clear();
      }
      metrics.events += active.size();
      metrics.rounds = round_ + 1;
      if (probe_ != nullptr) probe_->on_sync_round(active.size());
    }
    return core_.take_result();
  }

  void send_from(NodeId from, Port p, Message msg) {
    const Instance& instance = core_.instance();
    RISE_CHECK_MSG(p < instance.graph().degree(from),
                   "send on invalid port " << p << " at node " << from);
    core_.account_send(from, msg, round_);
    RISE_CHECK_MSG(core_.result().metrics.messages <= limits_.max_messages,
                   "sync engine exceeded max_messages");
    const NodeId to = instance.port_to_neighbor(from, p);
    if (core_.trace() != nullptr) {
      core_.trace()->on_send(round_, from, to, msg);
      core_.trace()->on_deliver(round_ + 1, from, to, msg);
    }
    const Port receiver_port = instance.reverse_port(from, p);
    next_inbox_[to].push_back(Incoming{receiver_port, std::move(msg)});
  }

  Time round() const { return round_; }
  std::uint64_t local_round(NodeId u) const {
    return core_.is_awake(u) ? (round_ - wake_round_[u] + 1) : 0;
  }
  void request_tick(NodeId u) { tick_requests_.insert(u); }

 private:
  /// Clears each recycled inbox (an aborted run can leave messages behind)
  /// and sizes the vector for n nodes, keeping all inner capacity.
  static void reset_boxes(std::vector<std::vector<Incoming>>& boxes,
                          NodeId n) {
    for (auto& box : boxes) box.clear();
    boxes.resize(n);
  }

  EngineCore core_;
  SyncRunLimits limits_;
  SyncContext ctx_;
  RunWorkspace* workspace_;
  obs::Probe* probe_;

  Time round_ = 0;
  std::vector<Time> wake_round_;
  std::vector<std::vector<Incoming>> inbox_;
  std::vector<std::vector<Incoming>> next_inbox_;
  std::map<Time, std::vector<NodeId>> pending_wakes_;
  std::set<NodeId> tick_requests_;
};

void SyncContext::send(Port p, Message msg) {
  engine_.send_from(node_, p, std::move(msg));
}

Time SyncContext::now() const { return engine_.round(); }

std::uint64_t SyncContext::local_round() const {
  return engine_.local_round(node_);
}

void SyncContext::request_tick() { engine_.request_tick(node_); }

}  // namespace

SyncEngine::SyncEngine(const Instance& instance, WakeSchedule schedule,
                       std::uint64_t seed)
    : instance_(instance), schedule_(std::move(schedule)), seed_(seed) {}

RunResult SyncEngine::run(const ProcessFactory& factory,
                          const SyncRunLimits& limits) {
  SyncImpl impl(instance_, schedule_, seed_, factory, limits, trace_, probe_,
                workspace_);
  return impl.run();
}

RunResult run_sync(const Instance& instance, const WakeSchedule& schedule,
                   std::uint64_t seed, const ProcessFactory& factory,
                   const SyncRunLimits& limits, TraceSink* trace) {
  SyncEngine engine(instance, schedule, seed);
  engine.set_trace(trace);
  return engine.run(factory, limits);
}

}  // namespace rise::sim
