#include "sim/sync_engine.hpp"

#include "sim/engine_core.hpp"
#include "sim/engine_impl.hpp"

namespace rise::sim {

SyncEngine::SyncEngine(const Instance& instance, WakeSchedule schedule,
                       std::uint64_t seed)
    : instance_(instance), schedule_(std::move(schedule)), seed_(seed) {}

RunResult SyncEngine::run(const ProcessFactory& factory,
                          const SyncRunLimits& limits) {
  // Runner before core teardown: inboxes go back to the workspace first,
  // then the core's per-node tables (the historical hand-back order).
  EngineCore core(instance_, /*tau=*/1, seed_, factory, trace_, probe_,
                  workspace_);
  internal::ProcessHandler handler{core};
  internal::SyncRunner<internal::ProcessHandler> runner(
      handler, core, schedule_, limits, workspace_, parallel_);
  return runner.run();
}

RunResult run_sync(const Instance& instance, const WakeSchedule& schedule,
                   std::uint64_t seed, const ProcessFactory& factory,
                   const SyncRunLimits& limits, TraceSink* trace) {
  SyncEngine engine(instance, schedule, seed);
  engine.set_trace(trace);
  return engine.run(factory, limits);
}

}  // namespace rise::sim
