#include "sim/sync_engine.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "support/check.hpp"

namespace rise::sim {

namespace {

class SyncImpl;

class SyncContext final : public Context {
 public:
  SyncContext(SyncImpl& engine, const Instance& instance)
      : engine_(engine), instance_(instance) {}

  void attach(NodeId node) { node_ = node; }

  Label my_label() const override { return instance_.label(node_); }
  NodeId degree() const override { return instance_.graph().degree(node_); }
  Knowledge knowledge() const override { return instance_.knowledge(); }
  Bandwidth bandwidth() const override { return instance_.bandwidth(); }
  unsigned label_bits() const override { return instance_.label_bits(); }
  std::uint64_t n_upper_bound() const override {
    return std::uint64_t{1} << instance_.label_bits();
  }

  std::span<const Label> neighbor_labels() const override {
    RISE_CHECK_MSG(instance_.knowledge() == Knowledge::KT1,
                   "neighbor IDs are not available under KT0");
    return instance_.neighbor_labels_by_port(node_);
  }

  void send(Port p, Message msg) override;
  void send_to_label(Label neighbor, Message msg) override;
  Time now() const override;
  std::uint64_t local_round() const override;
  void request_tick() override;
  Rng& rng() override;
  const BitString& advice() const override { return instance_.advice(node_); }
  void set_output(std::uint64_t value) override;

 private:
  SyncImpl& engine_;
  const Instance& instance_;
  NodeId node_ = kInvalidNode;
};

class SyncImpl {
 public:
  SyncImpl(const Instance& instance, const WakeSchedule& schedule,
           std::uint64_t seed, const ProcessFactory& factory,
           const SyncRunLimits& limits, TraceSink* trace)
      : instance_(instance), limits_(limits), seed_(seed), trace_(trace),
        ctx_(*this, instance) {
    const NodeId n = instance.num_nodes();
    processes_.resize(n);
    for (NodeId u = 0; u < n; ++u) processes_[u] = factory(u);
    awake_.assign(n, false);
    wake_round_.assign(n, kNever);
    inbox_.resize(n);
    next_inbox_.resize(n);
    result_.wake_time.assign(n, kNever);
    result_.outputs.assign(n, kNoOutput);
    result_.metrics.tau = 1;
    result_.metrics.sent_per_node.assign(n, 0);
    result_.metrics.received_per_node.assign(n, 0);
    for (const auto& [t, u] : schedule.wakes) {
      RISE_CHECK(u < n);
      pending_wakes_[t].push_back(u);
    }
  }

  RunResult run() {
    for (round_ = 0;; ++round_) {
      RISE_CHECK_MSG(round_ <= limits_.max_rounds,
                     "sync engine exceeded max_rounds");
      // 1. Deliver messages sent in the previous round.
      std::swap(inbox_, next_inbox_);
      for (auto& box : next_inbox_) box.clear();

      // 2. Adversary wake-ups scheduled for this round.
      std::vector<NodeId> active;
      std::set<NodeId> adversary_woken;
      if (const auto it = pending_wakes_.find(round_);
          it != pending_wakes_.end()) {
        for (NodeId u : it->second) {
          active.push_back(u);
          adversary_woken.insert(u);
        }
        pending_wakes_.erase(it);
      }
      for (NodeId u = 0; u < instance_.num_nodes(); ++u) {
        if (!inbox_[u].empty()) active.push_back(u);
      }
      for (NodeId u : tick_requests_) active.push_back(u);
      tick_requests_.clear();

      std::sort(active.begin(), active.end());
      active.erase(std::unique(active.begin(), active.end()), active.end());

      if (active.empty()) {
        if (pending_wakes_.empty()) break;  // quiescent
        // Fast-forward idle rounds to the next scheduled wake-up.
        round_ = pending_wakes_.begin()->first - 1;
        continue;
      }

      // 3. Step every active node.
      for (NodeId u : active) {
        ctx_.attach(u);
        if (!awake_[u]) {
          awake_[u] = true;
          wake_round_[u] = round_;
          result_.wake_time[u] = round_;
          result_.metrics.first_wake =
              std::min(result_.metrics.first_wake, round_);
          result_.metrics.last_wake =
              std::max(result_.metrics.last_wake, round_);
          const WakeCause cause = adversary_woken.count(u)
                                      ? WakeCause::kAdversary
                                      : WakeCause::kMessage;
          if (trace_ != nullptr) trace_->on_node_wake(round_, u, cause);
          processes_[u]->on_wake(ctx_, cause);
          ctx_.attach(u);  // on_wake may not change it, but be explicit
        }
        if (!inbox_[u].empty()) {
          result_.metrics.deliveries += inbox_[u].size();
          result_.metrics.received_per_node[u] +=
              static_cast<std::uint32_t>(inbox_[u].size());
          result_.metrics.last_delivery = round_;
        }
        processes_[u]->on_round(ctx_, inbox_[u]);
        inbox_[u].clear();
      }
      result_.metrics.events += active.size();
      result_.metrics.rounds = round_ + 1;
    }
    return std::move(result_);
  }

  void send_from(NodeId from, Port p, Message msg) {
    RISE_CHECK_MSG(p < instance_.graph().degree(from),
                   "send on invalid port " << p << " at node " << from);
    if (instance_.bandwidth() == Bandwidth::CONGEST) {
      RISE_CHECK_MSG(msg.logical_bits() <= instance_.congest_bit_budget(),
                     "CONGEST violation: message of "
                         << msg.logical_bits() << " bits exceeds budget of "
                         << instance_.congest_bit_budget());
    }
    ++result_.metrics.messages;
    RISE_CHECK_MSG(result_.metrics.messages <= limits_.max_messages,
                   "sync engine exceeded max_messages");
    result_.metrics.bits += msg.logical_bits();
    ++result_.metrics.sent_per_node[from];
    const NodeId to = instance_.port_to_neighbor(from, p);
    if (trace_ != nullptr) {
      trace_->on_send(round_, from, to, msg);
      trace_->on_deliver(round_ + 1, from, to, msg);
    }
    const Port receiver_port = instance_.neighbor_to_port(to, from);
    next_inbox_[to].push_back(Incoming{receiver_port, std::move(msg)});
  }

  Time round() const { return round_; }
  std::uint64_t local_round(NodeId u) const {
    return awake_[u] ? (round_ - wake_round_[u] + 1) : 0;
  }
  void request_tick(NodeId u) { tick_requests_.insert(u); }

  Rng& node_rng(NodeId u) {
    auto it = rngs_.find(u);
    if (it == rngs_.end()) {
      it = rngs_.emplace(u, Rng(mix_seed(seed_, u))).first;
    }
    return it->second;
  }

  void set_output(NodeId u, std::uint64_t value) { result_.outputs[u] = value; }

 private:
  const Instance& instance_;
  SyncRunLimits limits_;
  std::uint64_t seed_;
  TraceSink* trace_;
  SyncContext ctx_;

  Time round_ = 0;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<bool> awake_;
  std::vector<Time> wake_round_;
  std::vector<std::vector<Incoming>> inbox_;
  std::vector<std::vector<Incoming>> next_inbox_;
  std::map<Time, std::vector<NodeId>> pending_wakes_;
  std::set<NodeId> tick_requests_;
  std::unordered_map<NodeId, Rng> rngs_;
  RunResult result_;
};

void SyncContext::send(Port p, Message msg) {
  engine_.send_from(node_, p, std::move(msg));
}

void SyncContext::send_to_label(Label neighbor, Message msg) {
  RISE_CHECK_MSG(instance_.knowledge() == Knowledge::KT1,
                 "addressing by neighbor ID requires KT1");
  const auto labels = instance_.neighbor_labels_by_port(node_);
  for (Port p = 0; p < labels.size(); ++p) {
    if (labels[p] == neighbor) {
      engine_.send_from(node_, p, std::move(msg));
      return;
    }
  }
  RISE_CHECK_MSG(false, "node " << instance_.label(node_)
                                << " has no neighbor with ID " << neighbor);
}

Time SyncContext::now() const { return engine_.round(); }

std::uint64_t SyncContext::local_round() const {
  return engine_.local_round(node_);
}

void SyncContext::request_tick() { engine_.request_tick(node_); }

Rng& SyncContext::rng() { return engine_.node_rng(node_); }

void SyncContext::set_output(std::uint64_t value) {
  engine_.set_output(node_, value);
}

}  // namespace

SyncEngine::SyncEngine(const Instance& instance, WakeSchedule schedule,
                       std::uint64_t seed)
    : instance_(instance), schedule_(std::move(schedule)), seed_(seed) {}

RunResult SyncEngine::run(const ProcessFactory& factory,
                          const SyncRunLimits& limits) {
  SyncImpl impl(instance_, schedule_, seed_, factory, limits, trace_);
  return impl.run();
}

RunResult run_sync(const Instance& instance, const WakeSchedule& schedule,
                   std::uint64_t seed, const ProcessFactory& factory,
                   const SyncRunLimits& limits, TraceSink* trace) {
  SyncEngine engine(instance, schedule, seed);
  engine.set_trace(trace);
  return engine.run(factory, limits);
}

}  // namespace rise::sim
