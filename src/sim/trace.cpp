#include "sim/trace.hpp"

#include <ostream>

namespace rise::sim {

CsvTraceSink::CsvTraceSink(std::ostream& os) : os_(&os) {
  *os_ << "event,time,from,to,type,bits\n";
}

void CsvTraceSink::on_send(Time t, NodeId from, NodeId to,
                           const Message& msg) {
  *os_ << "send," << t << "," << from << "," << to << "," << msg.type << ","
       << msg.logical_bits() << "\n";
}

void CsvTraceSink::on_deliver(Time t, NodeId from, NodeId to,
                              const Message& msg) {
  *os_ << "deliver," << t << "," << from << "," << to << "," << msg.type
       << "," << msg.logical_bits() << "\n";
}

void CsvTraceSink::on_node_wake(Time t, NodeId node, WakeCause cause) {
  *os_ << "wake," << t << "," << node << ",,"
       << (cause == WakeCause::kAdversary ? "adversary" : "message") << ",\n";
}

void EdgeUsageSink::on_send(Time, NodeId from, NodeId to, const Message&) {
  edges_.insert(from < to ? std::make_pair(from, to)
                          : std::make_pair(to, from));
}

TeeTraceSink::TeeTraceSink(std::vector<TraceSink*> sinks)
    : sinks_(std::move(sinks)) {}

void TeeTraceSink::on_send(Time t, NodeId from, NodeId to,
                           const Message& msg) {
  for (TraceSink* s : sinks_)
    if (s != nullptr) s->on_send(t, from, to, msg);
}

void TeeTraceSink::on_deliver(Time t, NodeId from, NodeId to,
                              const Message& msg) {
  for (TraceSink* s : sinks_)
    if (s != nullptr) s->on_deliver(t, from, to, msg);
}

void TeeTraceSink::on_node_wake(Time t, NodeId node, WakeCause cause) {
  for (TraceSink* s : sinks_)
    if (s != nullptr) s->on_node_wake(t, node, cause);
}

}  // namespace rise::sim
