// Execution-trace observation.
//
// A TraceSink receives every externally visible event of a run — sends,
// deliveries, wake-ups — without perturbing the execution. Used for:
//   * CSV export of full message traces (CsvTraceSink) for offline analysis,
//   * edge-usage sets (EdgeUsageSink), the primitive behind the Theorem-2
//     indistinguishability checker (lb/swap_checker),
//   * ad-hoc assertions in tests.
//
// Sinks observe; they cannot inject or alter anything, so a traced run is
// bit-identical to an untraced one.
#pragma once

#include <iosfwd>
#include <set>
#include <utility>
#include <vector>

#include "sim/message.hpp"
#include "sim/process.hpp"
#include "sim/types.hpp"

namespace rise::sim {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void on_send(Time t, NodeId from, NodeId to, const Message& msg) = 0;
  virtual void on_deliver(Time t, NodeId from, NodeId to,
                          const Message& msg) = 0;
  virtual void on_node_wake(Time t, NodeId node, WakeCause cause) = 0;
};

/// Writes one CSV row per event: event,time,from,to,type,bits.
class CsvTraceSink final : public TraceSink {
 public:
  explicit CsvTraceSink(std::ostream& os);

  void on_send(Time t, NodeId from, NodeId to, const Message& msg) override;
  void on_deliver(Time t, NodeId from, NodeId to, const Message& msg) override;
  void on_node_wake(Time t, NodeId node, WakeCause cause) override;

 private:
  std::ostream* os_;
};

/// Records the set of undirected edges that carried at least one message.
class EdgeUsageSink final : public TraceSink {
 public:
  void on_send(Time t, NodeId from, NodeId to, const Message& msg) override;
  void on_deliver(Time, NodeId, NodeId, const Message&) override {}
  void on_node_wake(Time, NodeId, WakeCause) override {}

  const std::set<std::pair<NodeId, NodeId>>& used_edges() const {
    return edges_;
  }
  bool edge_used(NodeId a, NodeId b) const {
    return edges_.count(a < b ? std::make_pair(a, b)
                              : std::make_pair(b, a)) != 0;
  }

 private:
  std::set<std::pair<NodeId, NodeId>> edges_;
};

/// Fans every event out to several sinks, in the order given — the engines
/// accept a single TraceSink*, so observers that want to ride along with an
/// existing sink (e.g. the fuzzer's invariant checker next to a CSV export)
/// compose through this. Null entries are skipped.
class TeeTraceSink final : public TraceSink {
 public:
  TeeTraceSink() = default;
  explicit TeeTraceSink(std::vector<TraceSink*> sinks);

  void add(TraceSink* sink) { sinks_.push_back(sink); }

  void on_send(Time t, NodeId from, NodeId to, const Message& msg) override;
  void on_deliver(Time t, NodeId from, NodeId to, const Message& msg) override;
  void on_node_wake(Time t, NodeId node, WakeCause cause) override;

 private:
  std::vector<TraceSink*> sinks_;
};

/// Counts events (cheap smoke-test sink).
class CountingSink final : public TraceSink {
 public:
  void on_send(Time, NodeId, NodeId, const Message&) override { ++sends_; }
  void on_deliver(Time, NodeId, NodeId, const Message&) override {
    ++deliveries_;
  }
  void on_node_wake(Time, NodeId, WakeCause cause) override {
    ++wakes_;
    if (cause == WakeCause::kAdversary) ++adversary_wakes_;
  }

  std::uint64_t sends() const { return sends_; }
  std::uint64_t deliveries() const { return deliveries_; }
  std::uint64_t wakes() const { return wakes_; }
  std::uint64_t adversary_wakes() const { return adversary_wakes_; }

 private:
  std::uint64_t sends_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t wakes_ = 0;
  std::uint64_t adversary_wakes_ = 0;
};

}  // namespace rise::sim
