#include "sim/async_engine.hpp"

#include <algorithm>
#include <vector>

#include "sim/engine_core.hpp"
#include "sim/event_queue.hpp"
#include "support/check.hpp"

namespace rise::sim {

namespace {

class AsyncImpl;

class AsyncContext final : public CoreContext {
 public:
  AsyncContext(AsyncImpl& engine, EngineCore& core)
      : CoreContext(core), engine_(engine) {}

  void send(Port p, Message msg) override;
  Time now() const override;
  std::uint64_t local_round() const override { return 0; }
  void request_tick() override {
    RISE_CHECK_MSG(false, "request_tick is a synchronous-engine feature");
  }

 private:
  AsyncImpl& engine_;
};

class AsyncImpl {
 public:
  AsyncImpl(const Instance& instance, const DelayPolicy& delays,
            const WakeSchedule& schedule, std::uint64_t seed,
            const ProcessFactory& factory, const RunLimits& limits,
            TraceSink* trace, obs::Probe* probe, EventQueue::Mode queue_mode,
            RunWorkspace* workspace)
      : core_(instance, delays.max_delay(), seed, factory, trace, probe,
              workspace),
        delays_(delays),
        max_delay_(delays.max_delay()),
        // Every shipped policy with max_delay() == 1 returns exactly 1 (the
        // engine-enforced legal range is [1, max_delay]), so the per-send
        // virtual delay() call can be skipped entirely on the unit-delay
        // hot path. Fault-injection wrappers (check::LateDeliveryFault)
        // declare max_delay() >= 2 and therefore never take the fast path.
        unit_delays_(delays.max_delay() == 1),
        limits_(limits),
        ctx_(*this, core_),
        workspace_(workspace),
        probe_(probe) {
    if (workspace_ != nullptr) {
      channels_ = std::move(workspace_->channels);
      events_ = std::move(workspace_->events);
    }
    channels_.assign(instance.num_directed_edges(), ChannelState{});
    events_.reset(max_delay_, queue_mode);
    if (probe_ != nullptr) {
      probe_->set_backend(events_.using_buckets() ? "buckets" : "heap");
    }
    const NodeId n = instance.num_nodes();
    for (const auto& [t, u] : schedule.wakes) {
      RISE_CHECK(u < n);
      events_.push({t, next_seq_++, EventKind::kWake, u, kInvalidPort, {}});
    }
  }

  ~AsyncImpl() {
    if (workspace_ == nullptr) return;
    workspace_->channels = std::move(channels_);
    workspace_->events = std::move(events_);
  }

  RunResult run() {
    const Instance& instance = core_.instance();
    Metrics& metrics = core_.result().metrics;
    TraceSink* trace = core_.trace();
    while (!events_.empty()) {
      Event ev = events_.pop();
      now_ = ev.t;
      ++metrics.events;
      if (probe_ != nullptr) probe_->on_event_pop(events_.size());
      RISE_CHECK_MSG(metrics.events <= limits_.max_events,
                     "async engine exceeded max_events ("
                         << limits_.max_events << ") — runaway algorithm?");
      switch (ev.kind) {
        case EventKind::kWake:
          wake_node(ev.node, WakeCause::kAdversary);
          break;
        case EventKind::kDeliver: {
          core_.account_delivery(ev.node, ev.t);
          if (trace != nullptr) {
            trace->on_deliver(ev.t, instance.port_to_neighbor(ev.node, ev.port),
                              ev.node, ev.msg);
          }
          wake_node(ev.node, WakeCause::kMessage);
          ctx_.attach(ev.node);
          Incoming in{ev.port, std::move(ev.msg)};
          core_.process(ev.node).on_message(ctx_, in);
          break;
        }
      }
    }
    return core_.take_result();
  }

  void send_from(NodeId from, Port p, Message msg) {
    const Instance& instance = core_.instance();
    RISE_CHECK_MSG(p < instance.graph().degree(from),
                   "send on invalid port " << p << " at node " << from);
    core_.account_send(from, msg, now_);
    const NodeId to = instance.port_to_neighbor(from, p);
    if (core_.trace() != nullptr) core_.trace()->on_send(now_, from, to, msg);
    auto& chan = channels_[instance.directed_edge_id(from, p)];
    Time d = 1;
    if (!unit_delays_) {
      d = delays_.delay(from, to, chan.msg_index, now_);
      RISE_CHECK_MSG(d >= 1 && d <= max_delay_, "delay policy out of range");
    }
    ++chan.msg_index;
    Time arrive = now_ + d;
    arrive = std::max(arrive, chan.last_delivery);  // FIFO clamp
    chan.last_delivery = arrive;

    // A delivery clamped past max_time is dropped: the send was already
    // charged, so metrics.deliveries stays <= metrics.messages.
    if (limits_.max_time != kNever && arrive > limits_.max_time) return;
    const Port receiver_port = instance.reverse_port(from, p);
    events_.push({arrive, next_seq_++, EventKind::kDeliver, to, receiver_port,
                  std::move(msg)});
    if (probe_ != nullptr) {
      probe_->on_queue_push(events_.size(), events_.ring_occupancy(),
                            events_.overflow_occupancy());
    }
  }

  Time now() const { return now_; }

 private:
  void wake_node(NodeId u, WakeCause cause) {
    if (!core_.mark_awake(u, now_, cause)) return;
    ctx_.attach(u);
    core_.process(u).on_wake(ctx_, cause);
  }

  EngineCore core_;
  const DelayPolicy& delays_;
  Time max_delay_;
  bool unit_delays_;
  RunLimits limits_;
  AsyncContext ctx_;
  RunWorkspace* workspace_;

  std::vector<ChannelState> channels_;
  EventQueue events_;
  obs::Probe* probe_;
  std::uint64_t next_seq_ = 0;
  Time now_ = 0;
};

void AsyncContext::send(Port p, Message msg) {
  engine_.send_from(node_, p, std::move(msg));
}

Time AsyncContext::now() const { return engine_.now(); }

}  // namespace

AsyncEngine::AsyncEngine(const Instance& instance, const DelayPolicy& delays,
                         WakeSchedule schedule, std::uint64_t seed)
    : instance_(instance),
      delays_(delays),
      schedule_(std::move(schedule)),
      seed_(seed) {}

RunResult AsyncEngine::run(const ProcessFactory& factory,
                           const RunLimits& limits) {
  AsyncImpl impl(instance_, delays_, schedule_, seed_, factory, limits,
                 trace_, probe_, queue_mode_, workspace_);
  return impl.run();
}

RunResult run_async(const Instance& instance, const DelayPolicy& delays,
                    const WakeSchedule& schedule, std::uint64_t seed,
                    const ProcessFactory& factory, const RunLimits& limits,
                    TraceSink* trace) {
  AsyncEngine engine(instance, delays, schedule, seed);
  engine.set_trace(trace);
  return engine.run(factory, limits);
}

}  // namespace rise::sim
