#include "sim/async_engine.hpp"

#include <algorithm>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "support/check.hpp"

namespace rise::sim {

namespace {

enum class EventKind : std::uint8_t { kWake, kDeliver };

struct Event {
  Time t;
  std::uint64_t seq;  // tie-break: engine processes in schedule order
  EventKind kind;
  NodeId node;          // wake target / delivery receiver
  Port port;            // receiver port (deliver only)
  Message msg;          // (deliver only)
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  }
};

struct ChannelState {
  std::uint64_t msg_index = 0;     // messages sent so far on this channel
  Time last_delivery = 0;          // FIFO clamp
};

class EngineImpl;

class NodeContext final : public Context {
 public:
  NodeContext(EngineImpl& engine, const Instance& instance)
      : engine_(engine), instance_(instance) {}

  void attach(NodeId node) { node_ = node; }

  Label my_label() const override { return instance_.label(node_); }
  NodeId degree() const override { return instance_.graph().degree(node_); }
  Knowledge knowledge() const override { return instance_.knowledge(); }
  Bandwidth bandwidth() const override { return instance_.bandwidth(); }
  unsigned label_bits() const override { return instance_.label_bits(); }
  std::uint64_t n_upper_bound() const override {
    return std::uint64_t{1} << instance_.label_bits();
  }

  std::span<const Label> neighbor_labels() const override {
    RISE_CHECK_MSG(instance_.knowledge() == Knowledge::KT1,
                   "neighbor IDs are not available under KT0");
    return instance_.neighbor_labels_by_port(node_);
  }

  void send(Port p, Message msg) override;
  void send_to_label(Label neighbor, Message msg) override;

  Time now() const override;
  std::uint64_t local_round() const override { return 0; }
  void request_tick() override {
    RISE_CHECK_MSG(false, "request_tick is a synchronous-engine feature");
  }

  Rng& rng() override;
  const BitString& advice() const override { return instance_.advice(node_); }
  void set_output(std::uint64_t value) override;

  NodeId node() const { return node_; }

 private:
  EngineImpl& engine_;
  const Instance& instance_;
  NodeId node_ = kInvalidNode;
};

class EngineImpl {
 public:
  EngineImpl(const Instance& instance, const DelayPolicy& delays,
             const WakeSchedule& schedule, std::uint64_t seed,
             const ProcessFactory& factory, const RunLimits& limits,
             TraceSink* trace)
      : instance_(instance),
        delays_(delays),
        limits_(limits),
        seed_(seed),
        trace_(trace),
        ctx_(*this, instance) {
    const NodeId n = instance.num_nodes();
    processes_.resize(n);
    for (NodeId u = 0; u < n; ++u) processes_[u] = factory(u);
    awake_.assign(n, false);
    result_.wake_time.assign(n, kNever);
    result_.outputs.assign(n, kNoOutput);
    result_.metrics.tau = delays.max_delay();
    result_.metrics.sent_per_node.assign(n, 0);
    result_.metrics.received_per_node.assign(n, 0);
    for (const auto& [t, u] : schedule.wakes) {
      RISE_CHECK(u < n);
      push_event({t, next_seq_++, EventKind::kWake, u, kInvalidPort, {}});
    }
  }

  RunResult run() {
    while (!events_.empty()) {
      Event ev = std::move(const_cast<Event&>(events_.top()));
      events_.pop();
      now_ = ev.t;
      ++result_.metrics.events;
      RISE_CHECK_MSG(result_.metrics.events <= limits_.max_events,
                     "async engine exceeded max_events ("
                         << limits_.max_events << ") — runaway algorithm?");
      switch (ev.kind) {
        case EventKind::kWake:
          wake_node(ev.node, WakeCause::kAdversary);
          break;
        case EventKind::kDeliver: {
          ++result_.metrics.deliveries;
          ++result_.metrics.received_per_node[ev.node];
          result_.metrics.last_delivery = std::max(
              result_.metrics.last_delivery, ev.t);
          if (trace_ != nullptr) {
            trace_->on_deliver(ev.t,
                               instance_.port_to_neighbor(ev.node, ev.port),
                               ev.node, ev.msg);
          }
          wake_node(ev.node, WakeCause::kMessage);
          ctx_.attach(ev.node);
          Incoming in{ev.port, std::move(ev.msg)};
          processes_[ev.node]->on_message(ctx_, in);
          break;
        }
      }
    }
    return std::move(result_);
  }

  void send_from(NodeId from, Port p, Message msg) {
    RISE_CHECK_MSG(p < instance_.graph().degree(from),
                   "send on invalid port " << p << " at node " << from);
    if (instance_.bandwidth() == Bandwidth::CONGEST) {
      RISE_CHECK_MSG(msg.logical_bits() <= instance_.congest_bit_budget(),
                     "CONGEST violation: message of "
                         << msg.logical_bits() << " bits exceeds budget of "
                         << instance_.congest_bit_budget());
    }
    const NodeId to = instance_.port_to_neighbor(from, p);
    if (trace_ != nullptr) trace_->on_send(now_, from, to, msg);
    auto& chan = channels_[channel_key(from, to)];
    const Time d = delays_.delay(from, to, chan.msg_index, now_);
    RISE_CHECK_MSG(d >= 1 && d <= delays_.max_delay(),
                   "delay policy out of range");
    ++chan.msg_index;
    Time arrive = now_ + d;
    arrive = std::max(arrive, chan.last_delivery);  // FIFO clamp
    chan.last_delivery = arrive;

    ++result_.metrics.messages;
    result_.metrics.bits += msg.logical_bits();
    ++result_.metrics.sent_per_node[from];
    if (limits_.max_time != kNever && arrive > limits_.max_time) return;
    const Port receiver_port = instance_.neighbor_to_port(to, from);
    push_event({arrive, next_seq_++, EventKind::kDeliver, to, receiver_port,
                std::move(msg)});
  }

  Time now() const { return now_; }

  Rng& node_rng(NodeId u) {
    auto it = rngs_.find(u);
    if (it == rngs_.end()) {
      it = rngs_.emplace(u, Rng(mix_seed(seed_, u))).first;
    }
    return it->second;
  }

  void set_output(NodeId u, std::uint64_t value) { result_.outputs[u] = value; }

  const Instance& instance() const { return instance_; }

 private:
  static std::uint64_t channel_key(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  void push_event(Event ev) { events_.push(std::move(ev)); }

  void wake_node(NodeId u, WakeCause cause) {
    if (awake_[u]) return;
    awake_[u] = true;
    result_.wake_time[u] = now_;
    result_.metrics.first_wake = std::min(result_.metrics.first_wake, now_);
    result_.metrics.last_wake = std::max(result_.metrics.last_wake, now_);
    if (trace_ != nullptr) trace_->on_node_wake(now_, u, cause);
    ctx_.attach(u);
    processes_[u]->on_wake(ctx_, cause);
  }

  const Instance& instance_;
  const DelayPolicy& delays_;
  RunLimits limits_;
  std::uint64_t seed_;
  TraceSink* trace_;
  NodeContext ctx_;

  std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
  std::uint64_t next_seq_ = 0;
  Time now_ = 0;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<bool> awake_;
  std::unordered_map<std::uint64_t, ChannelState> channels_;
  std::unordered_map<NodeId, Rng> rngs_;
  RunResult result_;
};

void NodeContext::send(Port p, Message msg) {
  engine_.send_from(node_, p, std::move(msg));
}

void NodeContext::send_to_label(Label neighbor, Message msg) {
  RISE_CHECK_MSG(instance_.knowledge() == Knowledge::KT1,
                 "addressing by neighbor ID requires KT1");
  const auto labels = instance_.neighbor_labels_by_port(node_);
  for (Port p = 0; p < labels.size(); ++p) {
    if (labels[p] == neighbor) {
      engine_.send_from(node_, p, std::move(msg));
      return;
    }
  }
  RISE_CHECK_MSG(false, "node " << instance_.label(node_)
                                << " has no neighbor with ID " << neighbor);
}

Time NodeContext::now() const { return engine_.now(); }

Rng& NodeContext::rng() { return engine_.node_rng(node_); }

void NodeContext::set_output(std::uint64_t value) {
  engine_.set_output(node_, value);
}

}  // namespace

AsyncEngine::AsyncEngine(const Instance& instance, const DelayPolicy& delays,
                         WakeSchedule schedule, std::uint64_t seed)
    : instance_(instance),
      delays_(delays),
      schedule_(std::move(schedule)),
      seed_(seed) {}

RunResult AsyncEngine::run(const ProcessFactory& factory,
                           const RunLimits& limits) {
  EngineImpl impl(instance_, delays_, schedule_, seed_, factory, limits,
                  trace_);
  return impl.run();
}

RunResult run_async(const Instance& instance, const DelayPolicy& delays,
                    const WakeSchedule& schedule, std::uint64_t seed,
                    const ProcessFactory& factory, const RunLimits& limits,
                    TraceSink* trace) {
  AsyncEngine engine(instance, delays, schedule, seed);
  engine.set_trace(trace);
  return engine.run(factory, limits);
}

}  // namespace rise::sim
