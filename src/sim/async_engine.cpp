#include "sim/async_engine.hpp"

#include "sim/engine_core.hpp"
#include "sim/engine_impl.hpp"

namespace rise::sim {

AsyncEngine::AsyncEngine(const Instance& instance, const DelayPolicy& delays,
                         WakeSchedule schedule, std::uint64_t seed)
    : instance_(instance),
      delays_(delays),
      schedule_(std::move(schedule)),
      seed_(seed) {}

RunResult AsyncEngine::run(const ProcessFactory& factory,
                           const RunLimits& limits) {
  // The runner must be destroyed before the core: it returns the channel and
  // event storage to the workspace, then the core returns the per-node
  // tables — the same hand-back order the engines have always used.
  EngineCore core(instance_, delays_.max_delay(), seed_, factory, trace_,
                  probe_, workspace_);
  internal::ProcessHandler handler{core};
  internal::AsyncRunner<internal::ProcessHandler> runner(
      handler, core, delays_, schedule_, limits, queue_mode_, workspace_);
  return runner.run();
}

RunResult run_async(const Instance& instance, const DelayPolicy& delays,
                    const WakeSchedule& schedule, std::uint64_t seed,
                    const ProcessFactory& factory, const RunLimits& limits,
                    TraceSink* trace) {
  AsyncEngine engine(instance, delays, schedule, seed);
  engine.set_trace(trace);
  return engine.run(factory, limits);
}

}  // namespace rise::sim
