// A concrete problem instance: graph topology + adversary-chosen node IDs
// ("labels") + adversary-chosen KT0 port mappings + model flags + optional
// per-node advice.
//
// The paper's adversary "determines the network topology, the node IDs, and
// [under KT0] each individual node's port mapping" (Sec. 1.1); this class is
// exactly that choice, fixed before the execution starts.
#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "sim/types.hpp"
#include "support/bitio.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace rise::sim {

struct InstanceOptions {
  Knowledge knowledge = Knowledge::KT1;
  Bandwidth bandwidth = Bandwidth::LOCAL;

  /// Labels are a permutation of {1, ..., label_range_factor * n}; must be
  /// >= 1. With random_labels = false, node u simply gets label u + 1.
  std::uint32_t label_range_factor = 4;
  bool random_labels = true;

  /// With random_ports = true (the KT0 adversary's prerogative) each node's
  /// port->link mapping is an independent uniform permutation; otherwise
  /// port i is the i-th neighbor in ascending node order.
  bool random_ports = true;

  /// CONGEST budget multiplier: messages may carry at most
  /// congest_factor * ceil(log2(label_range)) bits.
  std::uint32_t congest_factor = 8;

  /// When non-empty, these exact labels are used (size must equal n; values
  /// must be distinct and in [1, label_range_factor * n]). Used by the
  /// lower-bound swap experiments, which need fine control over IDs.
  std::vector<Label> forced_labels;
};

class Instance {
 public:
  /// rng drives the adversary's label and port choices.
  static Instance create(graph::Graph g, const InstanceOptions& options,
                         Rng& rng);

  const graph::Graph& graph() const { return graph_; }
  Knowledge knowledge() const { return options_.knowledge; }
  Bandwidth bandwidth() const { return options_.bandwidth; }
  NodeId num_nodes() const { return graph_.num_nodes(); }

  Label label(NodeId u) const { return labels_[u]; }
  NodeId node_of_label(Label l) const;

  /// The neighbor reached through port p of node u. On the engines' per-send
  /// hot path, so defined inline over the flat port permutation.
  NodeId port_to_neighbor(NodeId u, Port p) const {
    RISE_DCHECK(u < num_nodes() && p < graph_.degree(u));
    return graph_.neighbors(u)[port_to_slot_[edge_base_[u] + p]];
  }

  /// port^{-1}_u(v): the port at u whose link leads to neighbor v.
  Port neighbor_to_port(NodeId u, NodeId v) const;

  /// Neighbor labels of u indexed by *port* (KT1 initial knowledge).
  std::span<const Label> neighbor_labels_by_port(NodeId u) const {
    RISE_DCHECK(u < num_nodes());
    return {neighbor_labels_.data() + edge_base_[u],
            static_cast<std::size_t>(graph_.degree(u))};
  }

  /// Dense directed-edge numbering derived from the CSR graph: the pair
  /// (u, p) with p < deg(u) has index edge_base(u) + p. The engines key
  /// flat per-channel state (FIFO clamp, message counters) by this.
  std::size_t directed_edge_id(NodeId u, Port p) const {
    return edge_base_[u] + p;
  }
  std::size_t num_directed_edges() const { return edge_base_.back(); }

  /// O(1) inverse of the link (u, p): the port at the far endpoint whose
  /// link leads back to u. Precomputed; equals
  /// neighbor_to_port(port_to_neighbor(u, p), u).
  Port reverse_port(NodeId u, Port p) const {
    return reverse_port_[edge_base_[u] + p];
  }

  /// O(1) KT1 addressing: the port of u leading to the neighbor with this
  /// label. Throws under KT0 and for labels that are not neighbors of u.
  Port port_of_label(NodeId u, Label neighbor) const;

  /// Maximum message size in bits permitted under CONGEST.
  std::uint64_t congest_bit_budget() const;

  /// Bits sufficient to encode any label (the "O(log n)" unit).
  unsigned label_bits() const { return label_bits_; }

  /// A copy of this instance with the labels of nodes a and b exchanged and
  /// every other adversary choice (ports, options) identical — the
  /// configuration swap at the heart of the Theorem-2 lower bound.
  Instance with_swapped_labels(NodeId a, NodeId b) const;

  void set_advice(std::vector<BitString> advice);
  bool has_advice() const { return !advice_.empty(); }
  const BitString& advice(NodeId u) const;

  /// Advice length statistics (Table 1's "Advice" column).
  struct AdviceStats {
    std::size_t max_bits = 0;
    std::size_t total_bits = 0;
    double avg_bits = 0.0;
  };
  AdviceStats advice_stats() const;

 private:
  /// Recomputes the label-derived views (neighbor_labels_, label_to_port_)
  /// from labels_ + port permutations; rejects duplicate neighbor labels.
  void rebuild_label_views();

  graph::Graph graph_;
  InstanceOptions options_;
  std::vector<Label> labels_;
  std::unordered_map<Label, NodeId> label_index_;
  // Flat directed-edge index (edge_base_ has n+1 prefix-degree entries);
  // every per-link table below is one flat array indexed by
  // edge_base_[u] + p (or + slot), not a vector-of-vectors — at 10^6 nodes
  // the nested form costs a million separate heap blocks and a second
  // pointer chase on every per-send lookup.
  std::vector<std::size_t> edge_base_;
  // Port -> adjacency slot permutation and its inverse, per node.
  std::vector<std::uint32_t> port_to_slot_;
  std::vector<Port> slot_to_port_;
  std::vector<Label> neighbor_labels_;  // by port
  // Precomputed reverse ports, one per directed edge.
  std::vector<Port> reverse_port_;
  // KT1 only: per-node label -> port, built once at construction so
  // send_to_label is O(1) instead of O(degree).
  std::vector<std::unordered_map<Label, Port>> label_to_port_;
  unsigned label_bits_ = 0;
  std::vector<BitString> advice_;
  BitString empty_advice_;
};

}  // namespace rise::sim
