// Discrete-event simulator for the asynchronous message-passing model.
//
// Semantics (Sec. 1.1–1.2 of the paper):
//   * Channels are error-free, bidirectional and FIFO; the engine clamps
//     per-directed-channel delivery times to be monotone so FIFO holds for
//     any delay policy.
//   * Message delays are chosen by an oblivious DelayPolicy with maximum
//     delay tau; one time unit = tau ticks.
//   * The adversary wakes nodes per a WakeSchedule; a message delivered to a
//     sleeping node wakes it and is processed upon awakening.
//   * Local computation is instantaneous: a callback may send any number of
//     messages at the current tick.
//
// The engine is deterministic given (instance, delay policy, schedule, seed).
#pragma once

#include <cstdint>

#include "sim/delay_policy.hpp"
#include "sim/event_queue.hpp"
#include "sim/instance.hpp"
#include "sim/metrics.hpp"
#include "sim/process.hpp"
#include "sim/adversary.hpp"
#include "sim/trace.hpp"
#include "sim/workspace.hpp"

namespace rise::sim {

struct RunLimits {
  std::uint64_t max_events = 200'000'000;  ///< hard safety cap; exceeded => throws
  Time max_time = kNever;                  ///< stop scheduling past this tick
};

class AsyncEngine {
 public:
  /// `seed` drives the per-node private randomness streams.
  AsyncEngine(const Instance& instance, const DelayPolicy& delays,
              WakeSchedule schedule, std::uint64_t seed);

  RunResult run(const ProcessFactory& factory, const RunLimits& limits = {});

  /// Attach an observer receiving every send/deliver/wake event. Observation
  /// never perturbs the run. Must outlive run().
  void set_trace(TraceSink* trace) { trace_ = trace; }

  /// Attach an observability probe (src/obs) collecting phase attribution
  /// and event-loop statistics. Same contract as set_trace: observation
  /// only, never perturbs the run, must outlive run().
  void set_probe(obs::Probe* probe) { probe_ = probe; }

  /// Force a specific event-timeline backend (testing / benchmarking only;
  /// both backends produce bit-identical runs). Default: kAuto picks the
  /// calendar queue for tau <= EventQueue::kMaxBucketSpan, else the heap.
  void set_event_queue_mode(EventQueue::Mode mode) { queue_mode_ = mode; }

  /// Borrow run storage (per-node tables, channel states, event calendar)
  /// from a RunWorkspace for the duration of run(), returning it afterwards.
  /// Reuse is capacity-only: a dirty workspace yields bit-identical results.
  /// The workspace must outlive run() and belong to the calling thread.
  void set_workspace(RunWorkspace* workspace) { workspace_ = workspace; }

 private:
  TraceSink* trace_ = nullptr;
  obs::Probe* probe_ = nullptr;
  RunWorkspace* workspace_ = nullptr;
  EventQueue::Mode queue_mode_ = EventQueue::Mode::kAuto;
  const Instance& instance_;
  const DelayPolicy& delays_;
  WakeSchedule schedule_;
  std::uint64_t seed_;
};

/// One-call convenience: build the engine and run.
RunResult run_async(const Instance& instance, const DelayPolicy& delays,
                    const WakeSchedule& schedule, std::uint64_t seed,
                    const ProcessFactory& factory,
                    const RunLimits& limits = {},
                    TraceSink* trace = nullptr);

}  // namespace rise::sim
