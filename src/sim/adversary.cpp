#include "sim/adversary.hpp"

#include <algorithm>
#include <cmath>

#include "graph/algorithms.hpp"
#include "support/check.hpp"

namespace rise::sim {

std::vector<NodeId> WakeSchedule::nodes_at_time_zero() const {
  std::vector<NodeId> out;
  for (const auto& [t, u] : wakes)
    if (t == 0) out.push_back(u);
  return out;
}

std::vector<NodeId> WakeSchedule::all_nodes() const {
  std::vector<NodeId> out;
  out.reserve(wakes.size());
  for (const auto& [t, u] : wakes) out.push_back(u);
  return out;
}

Time WakeSchedule::earliest() const {
  Time best = kNever;
  for (const auto& [t, u] : wakes) best = std::min(best, t);
  return best;
}

WakeSchedule wake_all(NodeId n) {
  WakeSchedule s;
  s.wakes.reserve(n);
  for (NodeId u = 0; u < n; ++u) s.wakes.push_back({0, u});
  return s;
}

WakeSchedule wake_single(NodeId node) {
  return WakeSchedule{{{Time{0}, node}}};
}

WakeSchedule wake_set(std::vector<NodeId> nodes) {
  WakeSchedule s;
  s.wakes.reserve(nodes.size());
  for (NodeId u : nodes) s.wakes.push_back({0, u});
  return s;
}

WakeSchedule wake_random_subset(NodeId n, double p, Rng& rng) {
  RISE_CHECK(n >= 1);
  WakeSchedule s;
  for (NodeId u = 0; u < n; ++u)
    if (rng.chance(p)) s.wakes.push_back({0, u});
  if (s.wakes.empty()) s.wakes.push_back({0, 0});
  return s;
}

WakeSchedule staggered_doubling(NodeId n, Time gap, double growth, Rng& rng) {
  RISE_CHECK(n >= 1);
  RISE_CHECK(growth >= 1.0);
  auto order = rng.permutation(n);
  WakeSchedule s;
  std::size_t next = 0;
  double batch = 1.0;
  Time t = 0;
  // batch is clamped at n: a larger batch never wakes more nodes than
  // remain, and without the clamp a big growth factor (or many iterations)
  // overflows batch to inf, making std::llround undefined.
  const double max_batch = static_cast<double>(order.size());
  while (next < order.size()) {
    const auto count =
        std::min<std::size_t>(order.size() - next,
                              static_cast<std::size_t>(std::llround(batch)));
    for (std::size_t i = 0; i < count; ++i) {
      s.wakes.push_back({t, order[next++]});
    }
    t += gap;
    batch = std::min(batch * growth, max_batch);
  }
  return s;
}

WakeSchedule dominating_set_wakeup(const graph::Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<bool> dominated(n, false);
  std::vector<NodeId> set;
  // Greedy max-coverage.
  for (;;) {
    NodeId best = kInvalidNode;
    std::size_t best_gain = 0;
    for (NodeId u = 0; u < n; ++u) {
      std::size_t gain = dominated[u] ? 0 : 1;
      for (NodeId v : g.neighbors(u))
        if (!dominated[v]) ++gain;
      if (gain > best_gain) {
        best_gain = gain;
        best = u;
      }
    }
    if (best == kInvalidNode) break;
    set.push_back(best);
    dominated[best] = true;
    for (NodeId v : g.neighbors(best)) dominated[v] = true;
  }
  return wake_set(std::move(set));
}

std::uint32_t schedule_awake_distance(const graph::Graph& g,
                                      const WakeSchedule& schedule) {
  return graph::awake_distance(g, schedule.all_nodes());
}

}  // namespace rise::sim
