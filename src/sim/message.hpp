// Messages exchanged by processes.
//
// A message is an algorithm-defined type tag plus a payload of 64-bit words.
// Each message also carries a *logical bit size* used for CONGEST accounting:
// algorithms state how many bits their message would occupy on the wire
// (e.g. a node ID costs O(log n) bits even though we store it in a uint64).
// If no explicit size is given, a conservative default of
// 8 + 64 * payload_words bits is charged.
//
// The payload container (PayloadWords) stores up to kInlineWords words
// inline, so the 0–2-word messages of flooding, gossip and ranked DFS never
// touch the heap; only large payloads (fast-wakeup label lists, DFS visited
// sets) spill to an allocation.
#pragma once

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <vector>

#include "sim/types.hpp"

namespace rise::sim {

/// A vector of 64-bit payload words with a small-buffer optimization.
class PayloadWords {
 public:
  static constexpr std::uint32_t kInlineWords = 4;

  using value_type = std::uint64_t;
  using iterator = std::uint64_t*;
  using const_iterator = const std::uint64_t*;

  PayloadWords() = default;

  PayloadWords(std::initializer_list<std::uint64_t> init) {
    append(init.begin(), init.end());
  }

  /// Implicit for source compatibility with std::vector payload call sites.
  PayloadWords(const std::vector<std::uint64_t>& v) {  // NOLINT
    append(v.begin(), v.end());
  }

  PayloadWords(const PayloadWords& other) { append(other.begin(), other.end()); }

  PayloadWords(PayloadWords&& other) noexcept { steal(other); }

  PayloadWords& operator=(const PayloadWords& other) {
    if (this != &other) {
      clear();
      append(other.begin(), other.end());
    }
    return *this;
  }

  PayloadWords& operator=(PayloadWords&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }

  ~PayloadWords() { release(); }

  std::uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Words the container can hold without reallocating (kInlineWords while
  /// inline). Heap capacities are always powers of two — the invariant the
  /// thread-local payload arena's size classes rely on.
  std::uint32_t capacity() const { return cap_; }

  std::uint64_t* data() { return is_inline() ? inline_ : heap_; }
  const std::uint64_t* data() const { return is_inline() ? inline_ : heap_; }

  std::uint64_t& operator[](std::size_t i) { return data()[i]; }
  std::uint64_t operator[](std::size_t i) const { return data()[i]; }

  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  void clear() { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > cap_) grow(static_cast<std::uint32_t>(n));
  }

  void push_back(std::uint64_t w) {
    if (size_ == cap_) grow(cap_ * 2);
    data()[size_++] = w;
  }

  template <typename It>
  void append(It first, It last) {
    for (; first != last; ++first) push_back(static_cast<std::uint64_t>(*first));
  }

  friend bool operator==(const PayloadWords& a, const PayloadWords& b) {
    if (a.size_ != b.size_) return false;
    return std::memcmp(a.data(), b.data(), a.size_ * sizeof(std::uint64_t)) == 0;
  }

 private:
  bool is_inline() const { return cap_ <= kInlineWords; }

  void grow(std::uint32_t new_cap);

  /// Returns the heap buffer (if any) to the thread-local payload arena so
  /// the next spill of the same size class skips the allocator. Inline so
  /// the overwhelmingly common inline-payload case (every flooding/gossip/
  /// DFS-control message; one destructor call per delivery) is a branch,
  /// not a cross-TU call.
  void release() {
    if (!is_inline()) release_heap();
  }

  void release_heap();

  /// Takes other's contents; leaves other empty and inline.
  void steal(PayloadWords& other) noexcept {
    size_ = other.size_;
    cap_ = other.cap_;
    if (other.is_inline()) {
      std::memcpy(inline_, other.inline_, size_ * sizeof(std::uint64_t));
    } else {
      heap_ = other.heap_;
    }
    other.size_ = 0;
    other.cap_ = kInlineWords;
  }

  std::uint32_t size_ = 0;
  std::uint32_t cap_ = kInlineWords;  // > kInlineWords iff heap-allocated
  union {
    std::uint64_t inline_[kInlineWords];
    std::uint64_t* heap_;
  };
};

struct Message {
  std::uint32_t type = 0;
  PayloadWords payload;
  std::uint64_t declared_bits = 0;  // 0 => use the conservative default

  std::uint64_t logical_bits() const {
    return declared_bits != 0 ? declared_bits
                              : 8 + 64 * static_cast<std::uint64_t>(payload.size());
  }
};

/// Convenience factory with an explicit logical size.
Message make_message(std::uint32_t type, PayloadWords payload,
                     std::uint64_t bits);

/// A delivered message as seen by the receiving process.
struct Incoming {
  Port port = kInvalidPort;  ///< the receiver's port the message arrived on
  Message msg;
};

}  // namespace rise::sim
