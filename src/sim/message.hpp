// Messages exchanged by processes.
//
// A message is an algorithm-defined type tag plus a payload of 64-bit words.
// Each message also carries a *logical bit size* used for CONGEST accounting:
// algorithms state how many bits their message would occupy on the wire
// (e.g. a node ID costs O(log n) bits even though we store it in a uint64).
// If no explicit size is given, a conservative default of
// 8 + 64 * payload_words bits is charged.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace rise::sim {

struct Message {
  std::uint32_t type = 0;
  std::vector<std::uint64_t> payload;
  std::uint64_t declared_bits = 0;  // 0 => use the conservative default

  std::uint64_t logical_bits() const {
    return declared_bits != 0 ? declared_bits
                              : 8 + 64 * static_cast<std::uint64_t>(payload.size());
  }
};

/// Convenience factory with an explicit logical size.
Message make_message(std::uint32_t type, std::vector<std::uint64_t> payload,
                     std::uint64_t bits);

/// A delivered message as seen by the receiving process.
struct Incoming {
  Port port = kInvalidPort;  ///< the receiver's port the message arrived on
  Message msg;
};

}  // namespace rise::sim
