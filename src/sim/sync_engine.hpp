// Lock-step synchronous engine.
//
// Semantics (Sec. 3.2 of the paper): computation proceeds in rounds; every
// message sent in round r is delivered at the start of round r+1. The
// adversary wakes nodes at round boundaries; a message delivered to a
// sleeping node wakes it. Nodes have NO global clock — a process only sees
// its local round counter (rounds since its own wake-up), per footnote 4.
//
// A node is stepped (on_round) in a round iff it has a non-empty inbox, it
// just woke up, or it called Context::request_tick() in the previous round;
// quiescence (no inbox, no pending wakes, no tick requests) terminates the
// run. This keeps simulated complexity proportional to actual activity.
//
// Sleeping model (SyncRunLimits::sleeping_model): nodes may additionally
// declare themselves asleep with Context::sleep_until(r) — they are not
// stepped again before round r, pay no awake cost, and messages arriving
// during the nap are dropped. This mode deliberately grants nodes the
// synchronized global clock the sleeping-model literature assumes
// (Context::now() as a round number), a documented divergence from the
// paper's footnote-4 no-global-clock stance; see DESIGN.md §13.
#pragma once

#include "sim/adversary.hpp"
#include "sim/instance.hpp"
#include "sim/metrics.hpp"
#include "sim/parallel.hpp"
#include "sim/process.hpp"
#include "sim/trace.hpp"
#include "sim/workspace.hpp"

namespace rise::sim {

struct SyncRunLimits {
  std::uint64_t max_rounds = 10'000'000;
  std::uint64_t max_messages = 500'000'000;

  /// Enables the sleeping model (DESIGN.md §13): Context::sleep_until
  /// becomes legal, declared-asleep nodes are never stepped, and messages
  /// arriving at them are dropped (counted in Metrics::sleep_dropped).
  /// Off, the engine reproduces the historical lock-step semantics (and
  /// traces) bit for bit.
  bool sleeping_model = false;
};

class SyncEngine {
 public:
  /// Wake times in the schedule are interpreted as round numbers.
  SyncEngine(const Instance& instance, WakeSchedule schedule,
             std::uint64_t seed);

  RunResult run(const ProcessFactory& factory,
                const SyncRunLimits& limits = {});

  /// Attach an observer receiving every send/deliver/wake event.
  void set_trace(TraceSink* trace) { trace_ = trace; }

  /// Attach an observability probe (src/obs); observation only, must
  /// outlive run().
  void set_probe(obs::Probe* probe) { probe_ = probe; }

  /// Borrow run storage from a RunWorkspace for run(); see
  /// AsyncEngine::set_workspace — same contract, bit-identical results.
  void set_workspace(RunWorkspace* workspace) { workspace_ = workspace; }

  /// Round-parallel stepping (sim/parallel.hpp); results are bit-identical
  /// to the default sequential path for any job count.
  void set_parallel(SyncParallel parallel) { parallel_ = parallel; }

 private:
  TraceSink* trace_ = nullptr;
  obs::Probe* probe_ = nullptr;
  RunWorkspace* workspace_ = nullptr;
  SyncParallel parallel_;
  const Instance& instance_;
  WakeSchedule schedule_;
  std::uint64_t seed_;
};

RunResult run_sync(const Instance& instance, const WakeSchedule& schedule,
                   std::uint64_t seed, const ProcessFactory& factory,
                   const SyncRunLimits& limits = {},
                   TraceSink* trace = nullptr);

}  // namespace rise::sim
