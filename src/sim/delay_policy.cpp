#include "sim/delay_policy.hpp"

#include "support/check.hpp"
#include "support/rng.hpp"

namespace rise::sim {

namespace {

std::uint64_t channel_hash(std::uint64_t seed, NodeId from, NodeId to,
                           std::uint64_t msg_index) {
  // Sequential SplitMix64 sponge: run the stream one step, fold the next
  // input word into the state, repeat. Every input word passes through the
  // full finalizer before the next is absorbed, so nearby channels and
  // adjacent message indices land in decorrelated delay streams.
  std::uint64_t s = seed;
  s = splitmix64(s) ^ (static_cast<std::uint64_t>(from) << 32 | to);
  s = splitmix64(s) ^ msg_index;
  return splitmix64(s);
}

class UnitDelay final : public DelayPolicy {
 public:
  Time max_delay() const override { return 1; }
  Time delay(NodeId, NodeId, std::uint64_t, Time) const override { return 1; }
};

class FixedDelay final : public DelayPolicy {
 public:
  explicit FixedDelay(Time tau) : tau_(tau) { RISE_CHECK(tau >= 1); }
  Time max_delay() const override { return tau_; }
  Time delay(NodeId, NodeId, std::uint64_t, Time) const override {
    return tau_;
  }

 private:
  Time tau_;
};

class RandomDelay final : public DelayPolicy {
 public:
  RandomDelay(Time tau, std::uint64_t seed) : tau_(tau), seed_(seed) {
    RISE_CHECK(tau >= 1);
  }
  Time max_delay() const override { return tau_; }
  Time delay(NodeId from, NodeId to, std::uint64_t msg_index,
             Time) const override {
    return 1 + channel_hash(seed_, from, to, msg_index) % tau_;
  }

 private:
  Time tau_;
  std::uint64_t seed_;
};

class SlowChannels final : public DelayPolicy {
 public:
  SlowChannels(Time tau, std::uint64_t slow_one_in, std::uint64_t seed)
      : tau_(tau), slow_one_in_(slow_one_in), seed_(seed) {
    RISE_CHECK(tau >= 1);
    RISE_CHECK(slow_one_in >= 1);
  }
  Time max_delay() const override { return tau_; }
  Time delay(NodeId from, NodeId to, std::uint64_t, Time) const override {
    // Channel-level decision only (index ignored): the whole link is slow.
    return channel_hash(seed_, from, to, 0) % slow_one_in_ == 0 ? tau_ : 1;
  }

 private:
  Time tau_;
  std::uint64_t slow_one_in_;
  std::uint64_t seed_;
};

class CongestionDelay final : public DelayPolicy {
 public:
  explicit CongestionDelay(Time tau) : tau_(tau) { RISE_CHECK(tau >= 1); }
  Time max_delay() const override { return tau_; }
  Time delay(NodeId, NodeId, std::uint64_t msg_index, Time) const override {
    return std::min<Time>(tau_, 1 + msg_index);
  }

 private:
  Time tau_;
};

}  // namespace

std::unique_ptr<DelayPolicy> unit_delay() {
  return std::make_unique<UnitDelay>();
}

std::unique_ptr<DelayPolicy> fixed_delay(Time tau) {
  return std::make_unique<FixedDelay>(tau);
}

std::unique_ptr<DelayPolicy> random_delay(Time tau, std::uint64_t seed) {
  return std::make_unique<RandomDelay>(tau, seed);
}

std::unique_ptr<DelayPolicy> slow_channels_delay(Time tau,
                                                 std::uint64_t slow_one_in,
                                                 std::uint64_t seed) {
  return std::make_unique<SlowChannels>(tau, slow_one_in, seed);
}

std::unique_ptr<DelayPolicy> congestion_delay(Time tau) {
  return std::make_unique<CongestionDelay>(tau);
}

}  // namespace rise::sim
