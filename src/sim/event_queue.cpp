#include "sim/event_queue.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace rise::sim {

namespace {

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

EventQueue::EventQueue(Time max_delay, Mode mode) { reset(max_delay, mode); }

void EventQueue::reset(Time max_delay, Mode mode) {
  switch (mode) {
    case Mode::kAuto:
      buckets_on_ = max_delay <= kMaxBucketSpan;
      break;
    case Mode::kBuckets:
      buckets_on_ = true;
      break;
    case Mode::kHeap:
      buckets_on_ = false;
      break;
  }
  // Drop leftovers (an exception can abort a run mid-timeline) but keep the
  // per-bucket and heap capacity for the next run.
  for (auto& slot : buckets_) slot.clear();
  heap_.clear();
  size_ = 0;
  ring_size_ = 0;
  cursor_pos_ = 0;
  cursor_ = 0;
  if (buckets_on_) {
    // B > max_delay so a delivery scheduled while processing time `cursor_`
    // can never wrap onto the bucket currently being drained.
    num_buckets_ = std::max<std::size_t>(64, next_pow2(max_delay + 2));
    mask_ = num_buckets_ - 1;
    buckets_.resize(num_buckets_);
  } else {
    num_buckets_ = 0;
    mask_ = 0;
  }
}

Event& EventQueue::front_advance() {
  for (;;) {
    auto& slot = buckets_[cursor_ & mask_];
    if (cursor_pos_ < slot.size()) return slot[cursor_pos_];
    // The current tick is drained; free the slot for reuse one lap later.
    slot.clear();
    cursor_pos_ = 0;
    if (ring_size_ != 0) {
      ++cursor_;
    } else if (!heap_.empty()) {
      cursor_ = heap_.front().t;  // leap over the idle gap
    } else {
      RISE_CHECK_MSG(false, "event queue size corrupted");
    }
    migrate();
  }
}

void EventQueue::migrate() {
  while (!heap_.empty() && heap_.front().t - cursor_ < num_buckets_) {
    // Heap pops ascend in (t, seq), and every pending direct push carries a
    // larger seq than any overflow event of the same tick (overflow events
    // were pushed before the cursor could reach their horizon), so plain
    // appends keep each bucket seq-sorted.
    Event ev = heap_pop();
    buckets_[ev.t & mask_].push_back(std::move(ev));
    ++ring_size_;
  }
}

void EventQueue::emplace_overflow(Time t, std::uint64_t seq, EventKind kind,
                                  NodeId node, Port port, Message msg) {
  heap_.emplace_back(t, seq, kind, node, port, std::move(msg));
  std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
}

Event EventQueue::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

}  // namespace rise::sim
