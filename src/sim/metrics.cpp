#include "sim/metrics.hpp"

#include <algorithm>

namespace rise::sim {

double Metrics::time_units() const {
  if (first_wake == kNever) return 0.0;
  const Time last = std::max(last_delivery, last_wake);
  if (last <= first_wake) return 0.0;
  return static_cast<double>(last - first_wake) / static_cast<double>(tau);
}

std::uint32_t Metrics::max_sent_per_node() const {
  if (sent_per_node.empty()) return 0;
  return *std::max_element(sent_per_node.begin(), sent_per_node.end());
}

bool RunResult::all_awake() const {
  return std::all_of(wake_time.begin(), wake_time.end(),
                     [](Time t) { return t != kNever; });
}

NodeId RunResult::awake_count() const {
  return static_cast<NodeId>(
      std::count_if(wake_time.begin(), wake_time.end(),
                    [](Time t) { return t != kNever; }));
}

std::uint64_t RunResult::awake_node_ticks() const {
  const Time last = std::max(metrics.last_delivery, metrics.last_wake);
  std::uint64_t total = 0;
  for (Time t : wake_time) {
    if (t != kNever && t < last) total += last - t;
  }
  return total;
}

std::uint64_t RunResult::total_awake_rounds() const {
  std::uint64_t total = 0;
  for (std::uint32_t r : awake_rounds) total += r;
  return total;
}

std::uint32_t RunResult::max_awake_rounds() const {
  if (awake_rounds.empty()) return 0;
  return *std::max_element(awake_rounds.begin(), awake_rounds.end());
}

Time RunResult::wakeup_span() const {
  if (wake_time.empty()) return 0;
  Time lo = kNever, hi = 0;
  for (Time t : wake_time) {
    if (t == kNever) return kNever;
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  return hi - lo;
}

}  // namespace rise::sim
