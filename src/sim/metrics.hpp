// Run metrics: the paper's three complexity measures (time, messages,
// advice) plus auxiliary counters used by tests and benchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace rise::sim {

struct Metrics {
  std::uint64_t messages = 0;    ///< total messages sent
  std::uint64_t bits = 0;        ///< total logical bits sent
  std::uint64_t deliveries = 0;  ///< messages delivered (== sent at the end)
  std::uint64_t events = 0;      ///< engine events processed

  /// Sleeping model only: messages that arrived at a node during one of its
  /// declared-sleep rounds and were dropped (send charged, no delivery).
  std::uint64_t sleep_dropped = 0;

  Time first_wake = kNever;
  Time last_wake = 0;
  Time last_delivery = 0;
  Time tau = 1;             ///< max message delay (defines the time unit)
  std::uint64_t rounds = 0; ///< synchronous engine: rounds executed

  std::vector<std::uint32_t> sent_per_node;
  std::vector<std::uint32_t> received_per_node;

  /// Sec. 1.2 time complexity: ticks from the first wake-up to the last
  /// event, normalized by tau.
  double time_units() const;

  std::uint32_t max_sent_per_node() const;
};

struct RunResult {
  Metrics metrics;
  std::vector<Time> wake_time;          ///< kNever where still asleep
  std::vector<std::uint64_t> outputs;   ///< kNoOutput where unset

  /// Per-node awake-round accounting (the sleeping model's complexity
  /// measure, Ghaffari–Portmann). Synchronous engine: the number of rounds
  /// the node was stepped — declared-sleep rounds and post-quiescence idle
  /// rounds cost nothing. Asynchronous engine: the number of events the node
  /// handled (its wake-up plus every delivery), the tick-free analogue.
  std::vector<std::uint32_t> awake_rounds;

  bool all_awake() const;
  NodeId awake_count() const;

  /// max over nodes of (wake_time - first_wake); kNever if some node slept.
  Time wakeup_span() const;

  /// Sum / max over nodes of awake_rounds. max_awake_rounds is the run's
  /// awake complexity (the quantity the sleeping-model envelopes bound).
  std::uint64_t total_awake_rounds() const;
  std::uint32_t max_awake_rounds() const;

  /// Total node-ticks spent awake up to the last event — a proxy for the
  /// energy consumption the paper's introduction motivates (Wake-on-LAN
  /// exists so that nodes can sleep): sum over woken nodes of
  /// (last_event_time - wake_time).
  std::uint64_t awake_node_ticks() const;
};

}  // namespace rise::sim
