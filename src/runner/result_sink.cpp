#include "runner/result_sink.hpp"

#include <unistd.h>

#include <cstdlib>
#include <ctime>
#include <utility>

#include "obs/profile.hpp"
#include "runner/thread_pool.hpp"

namespace rise::runner {

Provenance collect_provenance(const ShardSpec& shard) {
  Provenance p;
  char host[256] = {};
  p.hostname = ::gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0'
                   ? host
                   : "unknown";
  const char* commit = std::getenv("RISE_COMMIT");
  if (commit == nullptr || commit[0] == '\0') {
    commit = std::getenv("GITHUB_SHA");
  }
  p.commit = commit != nullptr && commit[0] != '\0' ? commit : "unknown";
  const std::time_t now = std::time(nullptr);
  std::tm utc = {};
  char stamp[32] = {};
  if (::gmtime_r(&now, &utc) != nullptr &&
      std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc) > 0) {
    p.started_at = stamp;
  } else {
    p.started_at = "unknown";
  }
  p.shard_index = shard.index;
  p.shard_count = shard.count;
  return p;
}

JsonResultSink::JsonResultSink(std::ostream& os, const CampaignPlan& plan,
                               std::size_t jobs, SinkOptions options)
    : writer_(os), options_(std::move(options)) {
  writer_.begin_object();
  writer_.kv("schema_version", kResultsSchemaVersion);
  writer_.kv("tool", "rise_campaign");
  writer_.key("base").begin_object();
  writer_.kv("graph", plan.base.graph);
  writer_.kv("schedule", plan.base.schedule);
  writer_.kv("algo", plan.base.algorithm);
  writer_.kv("delay", plan.base.delay);
  writer_.kv("seed", plan.base.seed);
  writer_.end_object();
  writer_.kv("seed_mode", plan.seed_mode == SeedMode::kSplitMix
                              ? "splitmix"
                              : "sequential");
  writer_.kv("num_seeds", static_cast<std::uint64_t>(plan.num_seeds));
  writer_.kv("prepare_mode", plan.prepare_mode == PrepareMode::kSharedConfig
                                 ? "shared_config"
                                 : "per_trial");
  writer_.kv("reuse", plan.reuse);
  writer_.kv("jobs", static_cast<std::uint64_t>(
                         jobs == 0 ? ThreadPool::hardware_threads() : jobs));
  writer_.key("provenance").begin_object();
  writer_.kv("hostname", options_.provenance.hostname);
  writer_.kv("commit", options_.provenance.commit);
  writer_.kv("started_at", options_.provenance.started_at);
  writer_.kv("shard_index", options_.provenance.shard_index);
  writer_.kv("shard_count", options_.provenance.shard_count);
  writer_.kv("merged", options_.provenance.merged);
  writer_.end_object();
  writer_.key("grid").begin_array();
  for (const GridAxis& axis : plan.grid) {
    writer_.begin_object();
    writer_.kv("param", axis.param);
    writer_.key("values").begin_array();
    for (const auto& v : axis.values) writer_.value(v);
    writer_.end_array();
    writer_.end_object();
  }
  writer_.end_array();
  writer_.key("trials").begin_array();
}

void JsonResultSink::trial(const TrialResult& r) {
  writer_.begin_object();
  writer_.kv("trial", static_cast<std::uint64_t>(r.trial.index));
  writer_.kv("config", static_cast<std::uint64_t>(r.trial.config_index));
  writer_.kv("seed_index", static_cast<std::uint64_t>(r.trial.seed_index));
  writer_.kv("seed", r.trial.spec.seed);
  writer_.kv("graph", r.trial.spec.graph);
  writer_.kv("schedule", r.trial.spec.schedule);
  writer_.kv("algo", r.trial.spec.algorithm);
  writer_.kv("delay", r.trial.spec.delay);
  if (!r.ok) {
    writer_.kv("error", r.error);
  } else {
    writer_.kv("n", r.num_nodes);
    writer_.kv("m", static_cast<std::uint64_t>(r.num_edges));
    writer_.kv("rho_awk", r.rho_awk);
    writer_.kv("synchronous", r.synchronous);
    writer_.kv("all_awake", r.all_awake);
    writer_.kv("awake_count", r.awake_count);
    writer_.kv("messages", r.messages);
    writer_.kv("bits", r.bits);
    writer_.kv("time_units", r.time_units);
    writer_.kv("rounds", r.rounds);
    writer_.kv("wakeup_span", r.wakeup_span);
    writer_.kv("awake_node_ticks", r.awake_node_ticks);
    writer_.kv("advice_max_bits",
               static_cast<std::uint64_t>(r.advice_max_bits));
    writer_.kv("advice_avg_bits", r.advice_avg_bits);
    writer_.kv("digest", r.result_digest);
  }
  writer_.kv("cached", r.from_store);
  if (options_.embed_profiles && r.profile != nullptr) {
    writer_.key("run_profile");
    obs::write_profile(writer_, *r.profile);
  }
  writer_.kv("wall_ms", r.wall_ms);
  writer_.end_object();
}

void JsonResultSink::write_stats(const char* name, const SampleStats& stats) {
  writer_.key(name).begin_object();
  writer_.kv("count", static_cast<std::uint64_t>(stats.count()));
  if (stats.count() > 0) {
    writer_.kv("mean", stats.mean());
    writer_.kv("stddev", stats.stddev());
    writer_.kv("min", stats.min());
    writer_.kv("median", stats.median());
    writer_.kv("max", stats.max());
  }
  writer_.end_object();
}

void JsonResultSink::write_config_stats(const ConfigStats& stats) {
  writer_.kv("trials", static_cast<std::uint64_t>(stats.trials));
  writer_.kv("failures", static_cast<std::uint64_t>(stats.failures));
  writer_.kv("errors", static_cast<std::uint64_t>(stats.errors));
  write_stats("messages", stats.messages);
  write_stats("bits", stats.bits);
  write_stats("time_units", stats.time_units);
  write_stats("wakeup_span", stats.wakeup_span);
  write_stats("awake_node_ticks", stats.awake_node_ticks);
}

void JsonResultSink::summary(const CampaignResult& result) {
  writer_.end_array();  // trials
  writer_.key("summary").begin_object();
  writer_.key("configs").begin_array();
  for (const ConfigStats& config : result.configs) {
    writer_.begin_object();
    writer_.kv("graph", config.spec.graph);
    writer_.kv("schedule", config.spec.schedule);
    writer_.kv("algo", config.spec.algorithm);
    writer_.kv("delay", config.spec.delay);
    write_config_stats(config);
    writer_.end_object();
  }
  writer_.end_array();
  writer_.key("total").begin_object();
  write_config_stats(result.total);
  writer_.end_object();
  writer_.key("store").begin_object();
  writer_.kv("enabled", options_.store_enabled);
  writer_.kv("hits", result.store_hits);
  writer_.kv("misses", result.store_misses);
  writer_.end_object();
  writer_.end_object();  // summary
  writer_.key("timing").begin_object();
  writer_.kv("wall_ms", result.wall_ms);
  writer_.kv("trials_per_sec", result.trials_per_sec);
  writer_.kv("jobs", static_cast<std::uint64_t>(result.jobs));
  writer_.end_object();
  writer_.end_object();  // root
}

}  // namespace rise::runner
