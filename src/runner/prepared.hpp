// Campaign-level cache of prepared experiment configurations.
//
// app::prepare_experiment is a pure function of (spec.graph, spec.algorithm,
// spec.seed): the generated graph, the Instance topology and the oracle
// advice depend on nothing else (oracles take no RNG — they are
// deterministic functions of the instance; test_app_prepared pins this).
// That triple is therefore the cache key, and a cached PreparedExperiment
// can be shared read-only across every worker thread of a campaign.
//
// Seed semantics decide what a campaign may share (see PrepareMode): under
// the default per-trial mode every trial draws its own graph/labels/ports
// from its own seed, so nothing is shareable and the cache is bypassed;
// under shared-config mode all trials of a configuration run on the one
// preparation derived from the campaign's base seed, and the cache collapses
// N preparations into one per configuration.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "app/spec.hpp"

namespace rise::runner {

/// How a campaign derives each trial's immutable prepared inputs.
enum class PrepareMode {
  /// Preparation seed = the trial's own seed: every trial gets its own
  /// graph/labels/ports, exactly the legacy rebuild-per-trial semantics
  /// (digests are bit-identical to pre-preparation campaigns). The default.
  kPerTrial,
  /// Preparation seed = the campaign's base seed: all trials of one grid
  /// configuration share a single prepared graph + instance + advice, and
  /// only schedule/delay/engine randomness vary per trial. Opt-in — it
  /// changes what is being measured (variance over runs on one topology
  /// rather than over topologies).
  kSharedConfig,
};

/// The cache key for a preparation: exactly the spec fields
/// prepare_experiment consumes. Schedule and delay are per-run and excluded,
/// so grid axes that sweep only those map onto one cached entry.
std::string prepared_config_key(const app::ExperimentSpec& spec);

/// Thread-safe map from prepared_config_key to a shared immutable
/// preparation. Misses build under the lock: concurrent requests for the
/// same configuration must not duplicate an expensive oracle precomputation,
/// and distinct configurations are each built once per campaign anyway.
class PreparedConfigCache {
 public:
  std::shared_ptr<const app::PreparedExperiment> get_or_prepare(
      const app::ExperimentSpec& spec);

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;

  /// Drops every cached preparation; the hit/miss counters keep counting.
  /// Outstanding shared_ptrs stay valid — entries die when their last user
  /// releases them. Long-lived callers whose key stream keeps moving (the
  /// search driver mutating graph parameters and seeds, src/search) call
  /// this to bound resident memory.
  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const app::PreparedExperiment>>
      entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace rise::runner
