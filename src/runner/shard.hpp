// Sharded multi-process campaigns: a deterministic trial-index partition of
// a CampaignPlan, and an orchestrator that runs one rise_cli worker process
// per shard against a shared content-addressed result store (src/store) and
// merges the workers' JSON output into the single-process results document.
//
// Why partitioning by trial index is safe: runner::trial_seed derives every
// trial's seed purely from (base seed, trial index) — never from which
// process or thread runs it — so the set of (config, seed) inputs, and hence
// every per-trial result digest, is invariant under any shard split. The
// merged per-trial digest stream of an N-shard run (including one that was
// killed and resumed from the store) is bit-identical to a --jobs 1
// single-process run of the same plan; tests and the CI shard job pin this.
//
// Orchestrator lifecycle: fork/exec one worker per shard (rise_cli itself,
// with --shard k/N --store DIR --json DIR/worker-k.json), poll for exits,
// restart crashed workers (nonzero exit >= 2 or a fatal signal) up to a
// restart budget — a restarted worker re-opens the store and serves every
// trial it already completed from cache, so it resumes exactly where it
// died — then merge: parse each worker document with the src/support/json
// reader, reassemble the full trial vector in trial-index order, aggregate
// with the same algebra run_campaign uses (ProfileAggregate included when
// profiling), and write the merged document/profile.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runner/campaign.hpp"

namespace rise::runner {

// ShardSpec and ShardStrategy are defined in runner/campaign.hpp (they are
// part of CampaignOptions); this header adds the planner and orchestrator.

/// Parses "K/N" (e.g. "2/8"); CheckError unless 0 <= K < N.
ShardSpec parse_shard_spec(const std::string& text);

/// True iff `trial_index` (of `total` trials) belongs to `shard`.
bool shard_owns(const ShardSpec& shard, std::size_t trial_index,
                std::size_t total, ShardStrategy strategy);

/// The subset of `trials` owned by `shard`, in trial-index order. The union
/// over all shards is exactly `trials`, disjointly, for every strategy.
std::vector<Trial> shard_trials(const std::vector<Trial>& trials,
                                const ShardSpec& shard,
                                ShardStrategy strategy);

/// Options of the multi-process orchestrator (rise_cli shard).
struct ShardCampaignOptions {
  std::string exe;            ///< path to the rise_cli binary to exec
  std::string store_dir;      ///< shared result store (required)
  std::uint32_t workers = 2;  ///< shard count == worker process count
  std::size_t jobs_per_worker = 1;  ///< --jobs forwarded to each worker
  /// --trial-jobs forwarded to each worker (intra-trial round parallelism;
  /// see CampaignOptions::trial_jobs). 1 = not forwarded.
  std::uint32_t trial_jobs = 1;
  int max_restarts = 3;       ///< per-worker crash-restart budget
  bool progress = false;      ///< aggregate multi-shard progress on stderr
  std::string json_path;      ///< merged results document ("" = none)
  bool profile = false;       ///< workers embed per-trial profiles; merged
  std::string profile_path;   ///< merged profile_aggregate path
  ShardStrategy strategy = ShardStrategy::kRoundRobin;

  /// Fault injection for the resume tests: worker `die_worker` is launched
  /// (first launch only) with --die-after `die_after`, making it SIGKILL
  /// itself after that many executed (non-cached) trials. 0 = off.
  int die_after = 0;
  std::uint32_t die_worker = 0;
};

struct ShardCampaignReport {
  bool ok = false;             ///< all workers completed and merge succeeded
  CampaignResult merged;       ///< valid when ok
  std::uint64_t store_hits = 0;    ///< summed over workers
  std::uint64_t store_misses = 0;  ///< summed over workers
  std::uint64_t restarts = 0;      ///< total worker restarts performed
  std::string error;           ///< first fatal orchestration error when !ok
};

/// Runs `plan` as a sharded multi-process campaign. Writes the merged JSON
/// results document (and merged profile) per `options`; returns the merged
/// campaign result plus orchestration counters. Requires a plan expressible
/// as rise_cli flags (no custom TrialFn) — the workers re-derive the plan
/// from the command line.
ShardCampaignReport run_shard_campaign(const CampaignPlan& plan,
                                       const ShardCampaignOptions& options);

/// The argv (exe first, no trailing null) used to launch worker `shard` of
/// `plan`. Exposed for tests; run_shard_campaign execs exactly this.
std::vector<std::string> worker_command(const CampaignPlan& plan,
                                        const ShardCampaignOptions& options,
                                        std::uint32_t shard,
                                        bool first_launch);

}  // namespace rise::runner
