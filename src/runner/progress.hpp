// Throttled campaign progress reporting on stderr.
//
// Workers call tick() concurrently; output is serialized by a mutex and
// throttled to one line per 200 ms so progress never becomes the bottleneck.
// The terminal 100% line is guaranteed: tick() compares a done-count
// snapshot taken under the lock (never the racy member), and finish() —
// called by the campaign after the pool drains — flushes the final line if
// the last tick's print was suppressed for any reason.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>

namespace rise::runner {

class ProgressReporter {
 public:
  /// Receives each rendered progress line (no trailing newline; lines start
  /// with '\r' for in-place terminal updates). Tests inject a capturing sink;
  /// the default writes to stderr.
  using Sink = std::function<void(const std::string& line)>;

  /// `enabled` == false makes every call a no-op (the common --progress-off
  /// path stays branch-cheap).
  ProgressReporter(std::size_t total, bool enabled, Sink sink = {});

  /// Records one finished trial. Prints at most once per 200 ms, except
  /// that reaching `total` always prints.
  void tick();

  /// Sets the absolute done count (monotonically; a lower value is ignored).
  /// For observers that poll external progress rather than complete trials
  /// themselves — the shard orchestrator polls the result store's record
  /// count across all workers and reports it here. Same throttle as tick().
  void update(std::size_t done);

  /// Flushes the terminal 100% line if it has not been printed yet, then the
  /// closing newline. Idempotent; call after all workers have finished.
  void finish();

 private:
  using Clock = std::chrono::steady_clock;

  /// Renders and emits the line for `done` trials; caller holds mu_.
  void print_locked(std::size_t done, Clock::time_point now);

  std::mutex mu_;
  const std::size_t total_;
  const bool enabled_;
  Sink sink_;
  std::size_t done_ = 0;
  std::size_t last_printed_done_ = 0;
  bool printed_any_ = false;
  bool finished_ = false;
  Clock::time_point start_;
  Clock::time_point last_print_;
};

}  // namespace rise::runner
