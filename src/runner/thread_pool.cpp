#include "runner/thread_pool.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace rise::runner {

namespace {

// Identifies the pool (and worker slot) the current thread belongs to, so
// submit() can detect nested submission and route it locally.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_worker = 0;

}  // namespace

std::size_t ThreadPool::hardware_threads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t num_threads, std::size_t queue_capacity)
    : capacity_(std::max<std::size_t>(1, queue_capacity)) {
  const std::size_t n =
      num_threads == 0 ? hardware_threads() : num_threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::enqueue(Task task, bool bounded) {
  RISE_CHECK_MSG(task != nullptr, "ThreadPool: empty task");
  const bool nested = tl_pool == this;
  std::size_t target;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (bounded && !nested) {
      space_cv_.wait(lock,
                     [this] { return stopping_ || queued_ < capacity_; });
    }
    RISE_CHECK_MSG(!stopping_, "ThreadPool: submit after shutdown");
    ++queued_;
    ++in_flight_;
    target = nested ? tl_worker : rr_cursor_++ % workers_.size();
  }
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::submit(Task task) { enqueue(std::move(task), true); }

bool ThreadPool::try_submit(Task task) {
  RISE_CHECK_MSG(task != nullptr, "ThreadPool: empty task");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || queued_ >= capacity_) return false;
  }
  // Between the check and enqueue() another submitter may take the slot;
  // enqueue(bounded=false) never blocks, so the capacity is exceeded by at
  // most the number of concurrent try_submit callers — an acceptable bound.
  enqueue(std::move(task), false);
  return true;
}

bool ThreadPool::pop_or_steal(std::size_t self, Task& out) {
  {
    Worker& own = *workers_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      out = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  const std::size_t n = workers_.size();
  for (std::size_t i = 1; i < n; ++i) {
    Worker& victim = *workers_[(self + i) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

bool ThreadPool::claimable_chunk() const {
  for (const ChunkBatch* b : batches_) {
    if (b->next < b->count) return true;
  }
  return false;
}

bool ThreadPool::run_one_chunk(std::unique_lock<std::mutex>& lock) {
  for (ChunkBatch* b : batches_) {
    if (b->next >= b->count) continue;
    const std::size_t i = b->next++;
    lock.unlock();
    b->fn(b->arg, i);
    lock.lock();
    // `b` stays valid: run_chunks only unregisters a batch after done ==
    // count, and this chunk's completion has not been counted yet.
    if (++b->done == b->count) batch_cv_.notify_all();
    return true;
  }
  return false;
}

void ThreadPool::run_chunks(std::size_t count, void (*fn)(void*, std::size_t),
                            void* arg) {
  RISE_CHECK_MSG(fn != nullptr, "ThreadPool: null chunk function");
  if (count == 0) return;
  if (count == 1) {  // nothing to share — skip the registration round-trip
    fn(arg, 0);
    return;
  }
  ChunkBatch batch{fn, arg, count};
  {
    std::lock_guard<std::mutex> lock(mu_);
    batches_.push_back(&batch);
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  // Claim chunks inline from our own batch. This guarantees progress no
  // matter what the workers are doing (they may all be parked inside
  // run_chunks calls of their own), which is what makes nested use
  // deadlock-free: worst case the caller runs every chunk itself.
  while (batch.next < batch.count) {
    const std::size_t i = batch.next++;
    lock.unlock();
    fn(arg, i);
    lock.lock();
    ++batch.done;
  }
  batch_cv_.wait(lock, [&batch] { return batch.done == batch.count; });
  batches_.erase(std::find(batches_.begin(), batches_.end(), &batch));
}

void ThreadPool::worker_loop(std::size_t self) {
  tl_pool = this;
  tl_worker = self;
  for (;;) {
    Task task;
    if (pop_or_steal(self, task)) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        --queued_;
      }
      space_cv_.notify_one();
      task();
      task = nullptr;  // release captures before reporting idle
      {
        std::lock_guard<std::mutex> lock(mu_);
        --in_flight_;
        if (in_flight_ == 0) idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (run_one_chunk(lock)) continue;
    if (queued_ > 0) continue;  // lost a race with a concurrent submit
    if (stopping_) return;
    work_cv_.wait(lock, [this] {
      return queued_ > 0 || stopping_ || claimable_chunk();
    });
  }
}

void ThreadPool::wait_idle() {
  RISE_CHECK_MSG(tl_pool != this,
                 "ThreadPool: wait_idle from a worker would deadlock");
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

}  // namespace rise::runner
