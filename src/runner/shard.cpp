#include "runner/shard.hpp"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "obs/profile.hpp"
#include "runner/progress.hpp"
#include "runner/result_sink.hpp"
#include "store/result_store.hpp"
#include "support/check.hpp"
#include "support/json.hpp"

namespace rise::runner {

namespace {

std::string worker_json_path(const std::string& store_dir, std::uint32_t k) {
  return store_dir + "/worker-" + std::to_string(k) + ".json";
}

std::string worker_profile_path(const std::string& store_dir,
                                std::uint32_t k) {
  return store_dir + "/worker-" + std::to_string(k) + ".profile.json";
}

std::uint64_t get_u64(const json::Value& v, std::string_view key) {
  return v.at(key).u64;
}

/// Inverse of JsonResultSink::trial for one worker-document trial record.
TrialResult trial_from_json(const json::Value& v) {
  TrialResult r;
  r.trial.index = static_cast<std::size_t>(get_u64(v, "trial"));
  r.trial.config_index = static_cast<std::size_t>(get_u64(v, "config"));
  r.trial.seed_index = static_cast<std::size_t>(get_u64(v, "seed_index"));
  r.trial.spec.seed = get_u64(v, "seed");
  r.trial.spec.graph = v.at("graph").string;
  r.trial.spec.schedule = v.at("schedule").string;
  r.trial.spec.algorithm = v.at("algo").string;
  r.trial.spec.delay = v.at("delay").string;
  if (const json::Value* err = v.find("error")) {
    r.ok = false;
    r.error = err->string;
  } else {
    r.ok = true;
    r.num_nodes = static_cast<std::uint32_t>(get_u64(v, "n"));
    r.num_edges = static_cast<std::size_t>(get_u64(v, "m"));
    r.rho_awk = static_cast<std::uint32_t>(get_u64(v, "rho_awk"));
    r.synchronous = v.at("synchronous").boolean;
    r.all_awake = v.at("all_awake").boolean;
    r.awake_count = static_cast<std::uint32_t>(get_u64(v, "awake_count"));
    r.messages = get_u64(v, "messages");
    r.bits = get_u64(v, "bits");
    r.time_units = v.at("time_units").number;
    r.rounds = get_u64(v, "rounds");
    r.wakeup_span = get_u64(v, "wakeup_span");
    r.awake_node_ticks = get_u64(v, "awake_node_ticks");
    r.advice_max_bits = static_cast<std::size_t>(get_u64(v, "advice_max_bits"));
    r.advice_avg_bits = v.at("advice_avg_bits").number;
    r.result_digest = get_u64(v, "digest");
  }
  r.from_store = v.at("cached").boolean;
  r.wall_ms = v.at("wall_ms").number;
  if (const json::Value* p = v.find("run_profile")) {
    r.profile =
        std::make_shared<const obs::RunProfile>(obs::profile_from_json(*p));
  }
  return r;
}

json::Value parse_document(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  RISE_CHECK_MSG(in.good(), "cannot read worker document " << path);
  std::ostringstream text;
  text << in.rdbuf();
  return json::parse(text.str());
}

}  // namespace

ShardSpec parse_shard_spec(const std::string& text) {
  const auto slash = text.find('/');
  RISE_CHECK_MSG(slash != std::string::npos && slash > 0 &&
                     slash + 1 < text.size(),
                 "shard spec '" << text << "' is not K/N");
  char* end = nullptr;
  errno = 0;
  const unsigned long index = std::strtoul(text.c_str(), &end, 10);
  RISE_CHECK_MSG(errno == 0 && end == text.c_str() + slash,
                 "shard spec '" << text << "' has a malformed index");
  errno = 0;
  const char* count_text = text.c_str() + slash + 1;
  const unsigned long count = std::strtoul(count_text, &end, 10);
  RISE_CHECK_MSG(errno == 0 && *end == '\0' && end != count_text,
                 "shard spec '" << text << "' has a malformed count");
  RISE_CHECK_MSG(count >= 1 && index < count,
                 "shard spec '" << text << "' needs 0 <= K < N");
  ShardSpec shard;
  shard.index = static_cast<std::uint32_t>(index);
  shard.count = static_cast<std::uint32_t>(count);
  return shard;
}

bool shard_owns(const ShardSpec& shard, std::size_t trial_index,
                std::size_t total, ShardStrategy strategy) {
  if (shard.whole_campaign()) return true;
  if (trial_index >= total) return false;
  if (strategy == ShardStrategy::kRoundRobin) {
    return trial_index % shard.count == shard.index;
  }
  // Block: contiguous runs of ceil(total/count) indices. Every index lands
  // in [0, count) because index < total <= per_shard * count.
  const std::size_t per_shard = (total + shard.count - 1) / shard.count;
  return trial_index / per_shard == shard.index;
}

std::vector<Trial> shard_trials(const std::vector<Trial>& trials,
                                const ShardSpec& shard,
                                ShardStrategy strategy) {
  std::vector<Trial> owned;
  for (const Trial& t : trials) {
    if (shard_owns(shard, t.index, trials.size(), strategy)) {
      owned.push_back(t);
    }
  }
  return owned;
}

std::vector<std::string> worker_command(const CampaignPlan& plan,
                                        const ShardCampaignOptions& options,
                                        std::uint32_t shard,
                                        bool first_launch) {
  std::vector<std::string> cmd;
  cmd.push_back(options.exe);
  cmd.push_back("run");
  cmd.push_back("--graph");
  cmd.push_back(plan.base.graph);
  cmd.push_back("--schedule");
  cmd.push_back(plan.base.schedule);
  cmd.push_back("--algo");
  cmd.push_back(plan.base.algorithm);
  cmd.push_back("--delay");
  cmd.push_back(plan.base.delay);
  cmd.push_back("--seed");
  cmd.push_back(std::to_string(plan.base.seed));
  cmd.push_back("--seeds");
  cmd.push_back(std::to_string(plan.num_seeds));
  for (const GridAxis& axis : plan.grid) {
    std::string arg = axis.param + "=";
    for (std::size_t i = 0; i < axis.values.size(); ++i) {
      if (i > 0) arg += ',';
      arg += axis.values[i];
    }
    cmd.push_back("--grid");
    cmd.push_back(std::move(arg));
  }
  cmd.push_back("--jobs");
  cmd.push_back(std::to_string(options.jobs_per_worker));
  if (options.trial_jobs > 1) {
    cmd.push_back("--trial-jobs");
    cmd.push_back(std::to_string(options.trial_jobs));
  }
  cmd.push_back("--shard");
  cmd.push_back(std::to_string(shard) + "/" +
                std::to_string(options.workers));
  if (options.strategy == ShardStrategy::kBlock) {
    cmd.push_back("--shard-strategy");
    cmd.push_back("block");
  }
  cmd.push_back("--store");
  cmd.push_back(options.store_dir);
  cmd.push_back("--json");
  cmd.push_back(worker_json_path(options.store_dir, shard));
  cmd.push_back("--no-progress");
  if (plan.prepare_mode == PrepareMode::kSharedConfig) {
    cmd.push_back("--share-config");
  }
  if (!plan.reuse) cmd.push_back("--no-reuse");
  if (options.profile) {
    cmd.push_back("--profile=" + worker_profile_path(options.store_dir,
                                                     shard));
    cmd.push_back("--embed-profiles");
  }
  if (first_launch && options.die_after > 0 && shard == options.die_worker) {
    cmd.push_back("--die-after");
    cmd.push_back(std::to_string(options.die_after));
  }
  return cmd;
}

ShardCampaignReport run_shard_campaign(const CampaignPlan& plan,
                                       const ShardCampaignOptions& options) {
  ShardCampaignReport report;
  try {
    RISE_CHECK_MSG(!plan.run,
                   "a sharded campaign requires the default trial function "
                   "(workers re-derive the plan from the command line)");
    RISE_CHECK_MSG(plan.seed_mode == SeedMode::kSplitMix,
                   "a sharded campaign requires SeedMode::kSplitMix");
    RISE_CHECK_MSG(plan.require_all_awake,
                   "a sharded campaign cannot express require_all_awake == "
                   "false as rise_cli flags");
    RISE_CHECK_MSG(!options.exe.empty(), "shard campaign needs a worker exe");
    RISE_CHECK_MSG(!options.store_dir.empty(),
                   "shard campaign needs a result store directory");
    RISE_CHECK_MSG(options.workers >= 1, "shard campaign needs >= 1 worker");

    const std::size_t total = expand_trials(plan).size();
    // Create (or validate) the store before forking anything, so a bad
    // --store path fails fast here rather than in every worker, and the
    // directory exists for the progress poll below.
    { store::ResultStore init(options.store_dir, ""); }

    struct WorkerState {
      std::uint32_t shard = 0;
      pid_t pid = -1;
      int restarts = 0;
      bool done = false;
    };

    auto launch = [&](std::uint32_t shard, bool first_launch) -> pid_t {
      const std::vector<std::string> args =
          worker_command(plan, options, shard, first_launch);
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (const std::string& a : args) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      const pid_t pid = ::fork();
      if (pid == 0) {
        // Child. Silence stdout — N workers' human summaries would
        // interleave; everything that matters lands in worker JSON files
        // and the store. stderr stays through for real errors.
        const int devnull = ::open("/dev/null", O_WRONLY | O_CLOEXEC);
        if (devnull >= 0) {
          ::dup2(devnull, STDOUT_FILENO);
          ::close(devnull);
        }
        ::execv(argv[0], argv.data());
        std::fprintf(stderr, "exec %s failed: %s\n", argv[0],
                     std::strerror(errno));
        ::_exit(127);  // >= 2, so the orchestrator treats this as a crash
      }
      return pid;
    };

    std::vector<WorkerState> workers(options.workers);
    for (std::uint32_t k = 0; k < options.workers; ++k) {
      workers[k].shard = k;
      workers[k].pid = launch(k, /*first_launch=*/true);
      RISE_CHECK_MSG(workers[k].pid > 0,
                     "cannot fork worker " << k << ": "
                                           << std::strerror(errno));
    }

    ProgressReporter progress(total, options.progress);
    std::string fatal;
    std::size_t running = workers.size();
    while (running > 0) {
      for (WorkerState& w : workers) {
        if (w.done) continue;
        int status = 0;
        const pid_t waited = ::waitpid(w.pid, &status, WNOHANG);
        if (waited == 0) continue;
        if (waited < 0) {
          w.done = true;
          --running;
          if (fatal.empty()) {
            fatal = "waitpid on worker " + std::to_string(w.shard) +
                    " failed: " + std::strerror(errno);
          }
          continue;
        }
        // Exit 0 (all awake) and 1 (some trials failed) are both completed
        // campaigns; >= 2 (usage/exception/exec failure) or a signal is a
        // crash. A restarted worker serves its finished trials from the
        // store, so it resumes where the dead one stopped.
        const bool crashed = WIFSIGNALED(status) ||
                             (WIFEXITED(status) && WEXITSTATUS(status) >= 2);
        if (!crashed) {
          w.done = true;
          --running;
          continue;
        }
        if (w.restarts >= options.max_restarts) {
          w.done = true;
          --running;
          if (fatal.empty()) {
            fatal = "worker " + std::to_string(w.shard) + " crashed " +
                    std::to_string(w.restarts + 1) +
                    " times, exceeding the restart budget";
          }
          continue;
        }
        ++w.restarts;
        ++report.restarts;
        w.pid = launch(w.shard, /*first_launch=*/false);
        if (w.pid <= 0) {
          w.done = true;
          --running;
          if (fatal.empty()) {
            fatal = "cannot restart worker " + std::to_string(w.shard) +
                    ": " + std::string(std::strerror(errno));
          }
        }
      }
      if (running > 0) {
        // Aggregate progress across every worker: records on disk are
        // exactly the executed trials (cache hits were counted at append
        // time by whichever earlier run produced them).
        const std::uint64_t done =
            store::ResultStore::count_records(options.store_dir);
        progress.update(static_cast<std::size_t>(
            done > total ? static_cast<std::uint64_t>(total) : done));
        const timespec nap{0, 50'000'000};  // 50 ms
        ::nanosleep(&nap, nullptr);
      }
    }
    progress.finish();
    if (!fatal.empty()) {
      report.error = fatal;
      return report;
    }

    // Merge: reassemble the full trial vector from the worker documents,
    // then aggregate with exactly the single-process algebra.
    CampaignResult merged;
    merged.trials.assign(total, TrialResult{});
    std::vector<bool> seen(total, false);
    for (std::uint32_t k = 0; k < options.workers; ++k) {
      const std::string path = worker_json_path(options.store_dir, k);
      const json::Value doc = parse_document(path);
      RISE_CHECK_MSG(get_u64(doc, "schema_version") == kResultsSchemaVersion,
                     path << " has schema version "
                          << get_u64(doc, "schema_version") << ", expected "
                          << kResultsSchemaVersion);
      ShardSpec shard;
      shard.index = k;
      shard.count = options.workers;
      for (const json::Value& t : doc.at("trials").array) {
        TrialResult r = trial_from_json(t);
        const std::size_t idx = r.trial.index;
        RISE_CHECK_MSG(idx < total,
                       path << " names trial " << idx << " of a campaign with "
                            << total);
        RISE_CHECK_MSG(shard_owns(shard, idx, total, options.strategy),
                       path << " reports trial " << idx
                            << ", which shard " << k << " does not own");
        RISE_CHECK_MSG(!seen[idx],
                       "trial " << idx << " appears twice across workers");
        seen[idx] = true;
        merged.trials[idx] = std::move(r);
      }
      const json::Value& store_block = doc.at("summary").at("store");
      merged.store_hits += get_u64(store_block, "hits");
      merged.store_misses += get_u64(store_block, "misses");
    }
    for (std::size_t i = 0; i < total; ++i) {
      RISE_CHECK_MSG(seen[i], "the shard split lost trial " << i);
    }
    merged.jobs = static_cast<std::size_t>(options.workers) *
                  (options.jobs_per_worker == 0 ? 1 : options.jobs_per_worker);
    aggregate_campaign(plan, merged);
    report.store_hits = merged.store_hits;
    report.store_misses = merged.store_misses;

    if (!options.json_path.empty()) {
      std::ofstream out(options.json_path, std::ios::binary | std::ios::trunc);
      RISE_CHECK_MSG(out.good(), "cannot open " << options.json_path
                                                << " for writing");
      SinkOptions sink_options;
      sink_options.provenance = collect_provenance();
      sink_options.provenance.shard_count = options.workers;
      sink_options.provenance.merged = true;
      sink_options.store_enabled = true;
      JsonResultSink sink(out, plan, merged.jobs, sink_options);
      for (const TrialResult& r : merged.trials) sink.trial(r);
      sink.summary(merged);
      out << "\n";
      RISE_CHECK_MSG(out.good(), "cannot write " << options.json_path);
    }
    if (options.profile && !options.profile_path.empty()) {
      std::ofstream out(options.profile_path,
                        std::ios::binary | std::ios::trunc);
      RISE_CHECK_MSG(out.good(), "cannot open " << options.profile_path
                                                << " for writing");
      out << obs::aggregate_to_json(merged.profile);
      RISE_CHECK_MSG(out.good(), "cannot write " << options.profile_path);
    }

    report.merged = std::move(merged);
    report.ok = true;
  } catch (const std::exception& e) {
    report.ok = false;
    report.error = e.what();
  }
  return report;
}

}  // namespace rise::runner
