// Work-stealing thread pool — the execution substrate of the campaign
// runner (src/runner/campaign.hpp).
//
// Design: each worker owns a deque protected by its own mutex. submit()
// round-robins tasks across the workers; a worker pops from the back of its
// own deque (LIFO, cache-friendly) and, when empty, steals from the front of
// a sibling's deque (FIFO, oldest first). The aggregate number of *queued*
// tasks is bounded: submit() from outside the pool blocks until a slot
// frees, which keeps campaign expansion memory-proportional to the bound
// rather than to the trial count. Submission from inside a worker (nested
// tasks) bypasses the bound and goes to the submitting worker's own deque —
// blocking there could deadlock the pool.
//
// Every piece of shared state is mutex-protected (no lock-free cleverness),
// so the pool is ThreadSanitizer-clean by construction; the tier-1 verify
// flow runs the runner tests under TSan (see CMake option RISE_SANITIZE).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/parallel.hpp"

namespace rise::runner {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  static constexpr std::size_t kDefaultCapacity = 4096;

  /// num_threads == 0 means hardware_threads().
  explicit ThreadPool(std::size_t num_threads = 0,
                      std::size_t queue_capacity = kDefaultCapacity);
  ~ThreadPool();  // graceful: drains every queued task, then joins

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Blocks while `queue_capacity` tasks are already
  /// queued (unless called from a pool worker; see file comment). Throws
  /// CheckError after shutdown().
  void submit(Task task);

  /// Non-blocking submit; false when the queue is full or stopping.
  bool try_submit(Task task);

  /// Blocks until every submitted task has finished. Must not be called
  /// from a pool worker. The pool remains usable afterwards.
  void wait_idle();

  /// Finishes all queued tasks, then stops and joins the workers.
  /// Idempotent; later submits throw.
  void shutdown();

  /// Runs fn(arg, i) once for every i in [0, count) and returns when all
  /// calls completed; idle workers help. Allocation-free in steady state
  /// (the batch lives on the caller's stack) and safe to call from *inside*
  /// a pool task: the caller claims chunks inline from its own batch, so
  /// even with every worker busy it simply runs the whole batch itself —
  /// nested use degrades to a serial loop, it can never deadlock. `fn` must
  /// not throw and must not block on this pool.
  void run_chunks(std::size_t count, void (*fn)(void*, std::size_t),
                  void* arg);

  std::size_t num_threads() const { return workers_.size(); }
  std::size_t queue_capacity() const { return capacity_; }

  /// std::thread::hardware_concurrency with a floor of 1.
  static std::size_t hardware_threads();

 private:
  struct Worker {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  /// One run_chunks call in progress. Lives on the caller's stack; the
  /// registered pointer and both counters are guarded by mu_.
  struct ChunkBatch {
    void (*fn)(void*, std::size_t);
    void* arg;
    std::size_t count;
    std::size_t next = 0;  ///< next unclaimed chunk index
    std::size_t done = 0;  ///< completed chunks
  };

  void worker_loop(std::size_t self);
  bool pop_or_steal(std::size_t self, Task& out);
  void enqueue(Task task, bool bounded);

  /// Claims and runs one chunk from the oldest batch with work left.
  /// Expects `lock` held on mu_ (dropped around the chunk body); returns
  /// false when no batch has an unclaimed chunk.
  bool run_one_chunk(std::unique_lock<std::mutex>& lock);
  bool claimable_chunk() const;  ///< under mu_

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;                  // guards the counters below
  std::condition_variable work_cv_;   // workers: wait for queued work
  std::condition_variable space_cv_;  // submitters: wait for queue space
  std::condition_variable idle_cv_;   // wait_idle
  std::condition_variable batch_cv_;  // run_chunks: wait for batch done
  std::vector<ChunkBatch*> batches_;  ///< active run_chunks calls
  std::size_t queued_ = 0;     ///< tasks sitting in some worker deque
  std::size_t in_flight_ = 0;  ///< queued + currently executing
  std::size_t rr_cursor_ = 0;  ///< round-robin submission target
  std::size_t capacity_;
  bool stopping_ = false;
};

/// Adapts the pool to the engine's executor interface (sim/parallel.hpp)
/// so a synchronous run can step round chunks on campaign workers. With a
/// null pool it degrades to an inline loop (same results — the engine's
/// parallel path is deterministic for any executor).
class PoolChunkExecutor final : public sim::ChunkExecutor {
 public:
  explicit PoolChunkExecutor(ThreadPool* pool) : pool_(pool) {}

  void run(std::size_t count, void (*fn)(void*, std::size_t),
           void* arg) override {
    if (pool_ != nullptr) {
      pool_->run_chunks(count, fn, arg);
    } else {
      for (std::size_t i = 0; i < count; ++i) fn(arg, i);
    }
  }

 private:
  ThreadPool* pool_;
};

}  // namespace rise::runner
