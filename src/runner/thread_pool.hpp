// Work-stealing thread pool — the execution substrate of the campaign
// runner (src/runner/campaign.hpp).
//
// Design: each worker owns a deque protected by its own mutex. submit()
// round-robins tasks across the workers; a worker pops from the back of its
// own deque (LIFO, cache-friendly) and, when empty, steals from the front of
// a sibling's deque (FIFO, oldest first). The aggregate number of *queued*
// tasks is bounded: submit() from outside the pool blocks until a slot
// frees, which keeps campaign expansion memory-proportional to the bound
// rather than to the trial count. Submission from inside a worker (nested
// tasks) bypasses the bound and goes to the submitting worker's own deque —
// blocking there could deadlock the pool.
//
// Every piece of shared state is mutex-protected (no lock-free cleverness),
// so the pool is ThreadSanitizer-clean by construction; the tier-1 verify
// flow runs the runner tests under TSan (see CMake option RISE_SANITIZE).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rise::runner {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  static constexpr std::size_t kDefaultCapacity = 4096;

  /// num_threads == 0 means hardware_threads().
  explicit ThreadPool(std::size_t num_threads = 0,
                      std::size_t queue_capacity = kDefaultCapacity);
  ~ThreadPool();  // graceful: drains every queued task, then joins

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Blocks while `queue_capacity` tasks are already
  /// queued (unless called from a pool worker; see file comment). Throws
  /// CheckError after shutdown().
  void submit(Task task);

  /// Non-blocking submit; false when the queue is full or stopping.
  bool try_submit(Task task);

  /// Blocks until every submitted task has finished. Must not be called
  /// from a pool worker. The pool remains usable afterwards.
  void wait_idle();

  /// Finishes all queued tasks, then stops and joins the workers.
  /// Idempotent; later submits throw.
  void shutdown();

  std::size_t num_threads() const { return workers_.size(); }
  std::size_t queue_capacity() const { return capacity_; }

  /// std::thread::hardware_concurrency with a floor of 1.
  static std::size_t hardware_threads();

 private:
  struct Worker {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t self);
  bool pop_or_steal(std::size_t self, Task& out);
  void enqueue(Task task, bool bounded);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;                  // guards the counters below
  std::condition_variable work_cv_;   // workers: wait for queued work
  std::condition_variable space_cv_;  // submitters: wait for queue space
  std::condition_variable idle_cv_;   // wait_idle
  std::size_t queued_ = 0;     ///< tasks sitting in some worker deque
  std::size_t in_flight_ = 0;  ///< queued + currently executing
  std::size_t rr_cursor_ = 0;  ///< round-robin submission target
  std::size_t capacity_;
  bool stopping_ = false;
};

}  // namespace rise::runner
