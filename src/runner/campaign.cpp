#include "runner/campaign.hpp"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

#include "runner/progress.hpp"
#include "runner/thread_pool.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace rise::runner {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// The calling worker thread's recycled engine storage. Campaign trials run
/// only on pool threads, so thread-locals give one workspace per worker
/// without the pool needing a worker-id API; each workspace is freed when
/// its worker thread exits (pool destruction, inside run_campaign).
sim::RunWorkspace& worker_workspace() {
  static thread_local sim::RunWorkspace workspace;
  return workspace;
}

/// How the default-run path obtains and executes a trial's preparation.
struct PreparedPolicy {
  PreparedConfigCache* cache = nullptr;  ///< non-null: kSharedConfig + reuse
  std::uint64_t prepare_seed = 0;        ///< base seed (kSharedConfig only)
  bool shared_config = false;
  bool reuse_workspace = false;
};

TrialResult execute_trial(const Trial& trial, const TrialFn& run,
                          bool profile, const PreparedPolicy& policy) {
  TrialResult r;
  r.trial = trial;
  const auto t0 = Clock::now();
  try {
    app::ExperimentReport report;
    if (!run) {
      // Default path: prepare (or fetch) the immutable inputs, then execute
      // with the trial's own seed. Under kPerTrial the prep seed IS the
      // trial seed, so this is bit-identical to the legacy
      // run_experiment-per-trial campaign.
      app::ExperimentSpec prep_spec = trial.spec;
      if (policy.shared_config) prep_spec.seed = policy.prepare_seed;
      sim::RunWorkspace* workspace =
          policy.reuse_workspace ? &worker_workspace() : nullptr;
      obs::Probe probe;
      std::shared_ptr<const app::PreparedExperiment> prepared;
      if (policy.cache != nullptr) {
        // Cached preparations are shared across trials, so no single
        // trial's probe may observe the build (which trial builds first is
        // a scheduling race; attaching its probe would make per-trial
        // profiles nondeterministic). Shared-mode profiles therefore have
        // no setup.graph/instance/advice timers — the cost is amortized
        // away, which is the point.
        prepared = policy.cache->get_or_prepare(prep_spec);
      } else {
        prepared = std::make_shared<const app::PreparedExperiment>(
            app::prepare_experiment(prep_spec, profile ? &probe : nullptr));
      }
      app::RunInstruments instruments;
      if (profile) instruments.probe = &probe;
      report = app::execute_prepared(*prepared, trial.spec, instruments,
                                     workspace);
      if (profile) {
        r.profile = std::make_shared<const obs::RunProfile>(
            app::take_run_profile(probe, report, trial.spec));
      }
    } else {
      report = run(trial.spec);
    }
    r.ok = true;
    r.num_nodes = report.num_nodes;
    r.num_edges = report.num_edges;
    r.rho_awk = report.rho_awk;
    r.synchronous = report.synchronous;
    r.all_awake = report.result.all_awake();
    r.awake_count = report.result.awake_count();
    r.messages = report.result.metrics.messages;
    r.bits = report.result.metrics.bits;
    r.time_units = report.result.metrics.time_units();
    r.rounds = report.result.metrics.rounds;
    r.wakeup_span = r.all_awake ? report.result.wakeup_span() : 0;
    r.awake_node_ticks = report.result.awake_node_ticks();
    r.advice_max_bits = report.advice.max_bits;
    r.advice_avg_bits = report.advice.avg_bits;
    if (!run && policy.reuse_workspace) {
      // Everything needed is extracted; hand the per-node result buffers
      // back so the next trial on this worker reuses their capacity.
      worker_workspace().recycle_result(std::move(report.result));
    }
  } catch (const std::exception& e) {
    r.ok = false;
    r.error = e.what();
  }
  r.wall_ms = ms_between(t0, Clock::now());
  return r;
}

void accumulate(ConfigStats& stats, const TrialResult& r,
                bool require_all_awake) {
  ++stats.trials;
  if (!r.ok) {
    ++stats.errors;
    return;
  }
  if (require_all_awake && !r.all_awake) {
    ++stats.failures;
    return;
  }
  stats.messages.add(static_cast<double>(r.messages));
  stats.bits.add(static_cast<double>(r.bits));
  stats.time_units.add(r.time_units);
  stats.wakeup_span.add(static_cast<double>(r.wakeup_span));
  stats.awake_node_ticks.add(static_cast<double>(r.awake_node_ticks));
}

void append_stats_line(std::ostringstream& os, const char* name,
                       const SampleStats& s) {
  if (s.count() == 0) return;
  os << "  " << name << ": mean " << s.mean() << "  sd " << s.stddev()
     << "  min " << s.min() << "  median " << s.median() << "  max "
     << s.max() << "\n";
}

}  // namespace

std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t trial_index) {
  // One SplitMix64 step over a state that folds the base seed with the
  // trial index; the odd multiplier spreads adjacent indices across the
  // whole state space. Distinct from the mix_seed(seed, 0xA..0xD) streams
  // run_experiment derives internally, so campaign seeds never collide with
  // a trial's own sub-streams by construction of the tag.
  std::uint64_t state =
      base_seed ^ ((trial_index + 0x51CEB00Dull) * 0xD1B54A32D192ED03ull);
  return splitmix64(state);
}

GridAxis parse_grid_axis(const std::string& text) {
  const auto eq = text.find('=');
  RISE_CHECK_MSG(eq != std::string::npos && eq > 0,
                 "grid axis '" << text << "' is not PARAM=a,b,c");
  GridAxis axis;
  axis.param = text.substr(0, eq);
  std::string values = text.substr(eq + 1);
  std::istringstream is(values);
  std::string field;
  while (std::getline(is, field, ',')) {
    RISE_CHECK_MSG(!field.empty(),
                   "grid axis '" << text << "' has an empty value");
    axis.values.push_back(field);
  }
  RISE_CHECK_MSG(!axis.values.empty(),
                 "grid axis '" << text << "' has no values");
  // Validate the param name eagerly so a typo fails before any trial runs.
  app::ExperimentSpec probe;
  apply_grid_param(probe, axis.param, axis.values.front());
  return axis;
}

void apply_grid_param(app::ExperimentSpec& spec, const std::string& param,
                      const std::string& value) {
  if (param == "graph") {
    spec.graph = value;
  } else if (param == "schedule") {
    spec.schedule = value;
  } else if (param == "algo" || param == "algorithm") {
    spec.algorithm = value;
  } else if (param == "delay") {
    spec.delay = value;
  } else {
    RISE_CHECK_MSG(false, "unknown grid param '"
                              << param
                              << "' (expected graph|schedule|algo|delay)");
  }
}

std::size_t config_count(const CampaignPlan& plan) {
  std::size_t count = 1;
  for (const auto& axis : plan.grid) {
    RISE_CHECK_MSG(!axis.values.empty(),
                   "grid axis '" << axis.param << "' has no values");
    count *= axis.values.size();
  }
  return count;
}

std::vector<Trial> expand_trials(const CampaignPlan& plan) {
  RISE_CHECK_MSG(plan.num_seeds >= 1, "campaign needs at least one seed");
  const std::size_t configs = config_count(plan);
  std::vector<Trial> trials;
  trials.reserve(configs * plan.num_seeds);
  for (std::size_t c = 0; c < configs; ++c) {
    app::ExperimentSpec config_spec = plan.base;
    // Decode the config index in mixed radix, last grid axis fastest.
    std::size_t rem = c;
    for (std::size_t a = plan.grid.size(); a-- > 0;) {
      const GridAxis& axis = plan.grid[a];
      apply_grid_param(config_spec, axis.param,
                       axis.values[rem % axis.values.size()]);
      rem /= axis.values.size();
    }
    for (std::size_t s = 0; s < plan.num_seeds; ++s) {
      Trial t;
      t.index = c * plan.num_seeds + s;
      t.config_index = c;
      t.seed_index = s;
      t.spec = config_spec;
      t.spec.seed = plan.seed_mode == SeedMode::kSplitMix
                        ? trial_seed(plan.base.seed, t.index)
                        : plan.base.seed + s;
      trials.push_back(std::move(t));
    }
  }
  return trials;
}

CampaignResult run_campaign(const CampaignPlan& plan,
                            const CampaignOptions& options) {
  RISE_CHECK_MSG(!plan.run || plan.prepare_mode == PrepareMode::kPerTrial,
                 "PrepareMode::kSharedConfig requires the default trial "
                 "function (a custom TrialFn has no preparation seam)");
  const std::vector<Trial> trials = expand_trials(plan);

  // Profiling needs the probe seam; a custom TrialFn has none.
  const bool profile = plan.profile && !plan.run;

  PreparedConfigCache cache;
  PreparedPolicy policy;
  policy.shared_config = plan.prepare_mode == PrepareMode::kSharedConfig;
  policy.prepare_seed = plan.base.seed;
  policy.reuse_workspace = !plan.run && plan.reuse;
  // The cache only pays off when trials can actually share a preparation,
  // i.e. when the prep seed is per-config rather than per-trial.
  if (policy.shared_config && plan.reuse) policy.cache = &cache;

  CampaignResult result;
  result.jobs =
      options.jobs == 0 ? ThreadPool::hardware_threads() : options.jobs;
  result.trials.resize(trials.size());

  const auto t0 = Clock::now();
  {
    ProgressReporter progress(trials.size(), options.progress);
    ThreadPool pool(result.jobs);
    for (const Trial& trial : trials) {
      // &trial and &result.trials[i] stay valid: neither vector is resized
      // while the pool runs, and each slot is written by exactly one task.
      TrialResult* slot = &result.trials[trial.index];
      pool.submit([&trial, slot, &plan, &policy, &progress, profile] {
        *slot = execute_trial(trial, plan.run, profile, policy);
        progress.tick();
      });
    }
    pool.wait_idle();
    progress.finish();
  }
  result.wall_ms = ms_between(t0, Clock::now());
  if (!plan.run) {
    result.prepared_configs =
        policy.cache != nullptr ? cache.misses() : trials.size();
    result.prepared_cache_hits = policy.cache != nullptr ? cache.hits() : 0;
  }
  result.trials_per_sec =
      result.wall_ms > 0.0
          ? static_cast<double>(trials.size()) / (result.wall_ms / 1000.0)
          : 0.0;

  // Aggregate in trial-index order — fixed regardless of which worker
  // finished first — so SampleStats sees the same insertion sequence for
  // every jobs value.
  result.configs.resize(config_count(plan));
  for (const TrialResult& r : result.trials) {
    ConfigStats& config = result.configs[r.trial.config_index];
    if (config.trials == 0) {
      config.spec = r.trial.spec;
      config.spec.seed = plan.base.seed;
    }
    accumulate(config, r, plan.require_all_awake);
    accumulate(result.total, r, plan.require_all_awake);
    if (r.profile != nullptr) result.profile.merge(*r.profile);
  }
  result.total.spec = plan.base;

  if (options.sink != nullptr) {
    for (const TrialResult& r : result.trials) options.sink->trial(r);
    options.sink->summary(result);
  }
  return result;
}

std::string format_campaign(const CampaignResult& result) {
  std::ostringstream os;
  os << "campaign  : " << result.configs.size() << " config(s) x "
     << (result.configs.empty() || result.configs[0].trials == 0
             ? 0
             : result.configs[0].trials)
     << " seed(s) = " << result.trials.size() << " trials, jobs "
     << result.jobs << "\n";
  const bool multi = result.configs.size() > 1;
  for (std::size_t c = 0; c < result.configs.size(); ++c) {
    const ConfigStats& config = result.configs[c];
    if (multi) {
      os << "config " << c << "  : graph=" << config.spec.graph
         << " schedule=" << config.spec.schedule
         << " algo=" << config.spec.algorithm
         << " delay=" << config.spec.delay << "\n";
    }
    os << "  runs: " << config.trials << " (" << config.failures
       << " incomplete, " << config.errors << " errors)\n";
    append_stats_line(os, "messages ", config.messages);
    append_stats_line(os, "time     ", config.time_units);
    append_stats_line(os, "wake span", config.wakeup_span);
    if (config.errors > 0) {
      // Surface one representative error so a misconfigured campaign is
      // diagnosable from the summary alone.
      for (const TrialResult& r : result.trials) {
        if (r.trial.config_index == c && !r.ok) {
          os << "  first error: " << r.error << "\n";
          break;
        }
      }
    }
  }
  if (multi) {
    os << "total     : " << result.total.trials << " runs ("
       << result.total.failures << " incomplete, " << result.total.errors
       << " errors)\n";
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "wall      : %.1f ms (%.1f trials/s)\n",
                result.wall_ms, result.trials_per_sec);
  os << buf;
  return os.str();
}

}  // namespace rise::runner
