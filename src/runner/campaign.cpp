#include "runner/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

#include "check/scenario.hpp"
#include "runner/progress.hpp"
#include "runner/shard.hpp"
#include "runner/thread_pool.hpp"
#include "store/digest.hpp"
#include "store/result_store.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace rise::runner {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// The calling worker thread's recycled engine storage. Campaign trials run
/// only on pool threads, so thread-locals give one workspace per worker
/// without the pool needing a worker-id API; each workspace is freed when
/// its worker thread exits (pool destruction, inside run_campaign).
sim::RunWorkspace& worker_workspace() {
  static thread_local sim::RunWorkspace workspace;
  return workspace;
}

/// How the default-run path obtains and executes a trial's preparation.
struct PreparedPolicy {
  PreparedConfigCache* cache = nullptr;  ///< non-null: kSharedConfig + reuse
  std::uint64_t prepare_seed = 0;        ///< base seed (kSharedConfig only)
  bool shared_config = false;
  bool reuse_workspace = false;
  std::uint32_t trial_jobs = 1;  ///< intra-trial round chunks (sync runs)
  sim::ChunkExecutor* trial_executor = nullptr;  ///< where chunks run
};

/// The campaign's read-through/write-through connection to the result store
/// (one per run_campaign call; shared by all worker threads).
struct StoreContext {
  store::ResultStore* store = nullptr;
  std::string prepare_tag;  ///< keys every trial of this campaign
  bool serve_hits = false;  ///< false while profiling (records carry no profile)
  int die_after = 0;        ///< fault injection; see CampaignOptions
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<int> executed{0};
};

store::TrialRecord to_record(const TrialResult& r,
                             const std::string& prepare_tag) {
  store::TrialRecord rec;
  rec.graph = r.trial.spec.graph;
  rec.schedule = r.trial.spec.schedule;
  rec.algorithm = r.trial.spec.algorithm;
  rec.delay = r.trial.spec.delay;
  rec.seed = r.trial.spec.seed;
  rec.prepare_tag = prepare_tag;
  rec.ok = r.ok;
  rec.error = r.error;
  rec.num_nodes = r.num_nodes;
  rec.num_edges = r.num_edges;
  rec.rho_awk = r.rho_awk;
  rec.synchronous = r.synchronous;
  rec.all_awake = r.all_awake;
  rec.awake_count = r.awake_count;
  rec.messages = r.messages;
  rec.bits = r.bits;
  rec.time_units = r.time_units;
  rec.rounds = r.rounds;
  rec.wakeup_span = r.wakeup_span;
  rec.awake_node_ticks = r.awake_node_ticks;
  rec.advice_max_bits = r.advice_max_bits;
  rec.advice_avg_bits = r.advice_avg_bits;
  rec.result_digest = r.result_digest;
  rec.wall_ms = r.wall_ms;
  return rec;
}

void from_record(const store::TrialRecord& rec, TrialResult& r) {
  r.ok = rec.ok;
  r.error = rec.error;
  r.num_nodes = rec.num_nodes;
  r.num_edges = rec.num_edges;
  r.rho_awk = rec.rho_awk;
  r.synchronous = rec.synchronous;
  r.all_awake = rec.all_awake;
  r.awake_count = rec.awake_count;
  r.messages = rec.messages;
  r.bits = rec.bits;
  r.time_units = rec.time_units;
  r.rounds = rec.rounds;
  r.wakeup_span = rec.wakeup_span;
  r.awake_node_ticks = rec.awake_node_ticks;
  r.advice_max_bits = static_cast<std::size_t>(rec.advice_max_bits);
  r.advice_avg_bits = rec.advice_avg_bits;
  r.result_digest = rec.result_digest;
  // The original execution's wall clock, not this campaign's; kept for the
  // record but flagged by from_store so consumers can tell.
  r.wall_ms = rec.wall_ms;
  r.from_store = true;
}

TrialResult execute_trial(const Trial& trial, const TrialFn& run,
                          bool profile, const PreparedPolicy& policy) {
  TrialResult r;
  r.trial = trial;
  const auto t0 = Clock::now();
  try {
    app::ExperimentReport report;
    if (!run) {
      // Default path: prepare (or fetch) the immutable inputs, then execute
      // with the trial's own seed. Under kPerTrial the prep seed IS the
      // trial seed, so this is bit-identical to the legacy
      // run_experiment-per-trial campaign.
      app::ExperimentSpec prep_spec = trial.spec;
      if (policy.shared_config) prep_spec.seed = policy.prepare_seed;
      sim::RunWorkspace* workspace =
          policy.reuse_workspace ? &worker_workspace() : nullptr;
      obs::Probe probe;
      std::shared_ptr<const app::PreparedExperiment> prepared;
      if (policy.cache != nullptr) {
        // Cached preparations are shared across trials, so no single
        // trial's probe may observe the build (which trial builds first is
        // a scheduling race; attaching its probe would make per-trial
        // profiles nondeterministic). Shared-mode profiles therefore have
        // no setup.graph/instance/advice timers — the cost is amortized
        // away, which is the point.
        prepared = policy.cache->get_or_prepare(prep_spec);
      } else {
        prepared = std::make_shared<const app::PreparedExperiment>(
            app::prepare_experiment(prep_spec, profile ? &probe : nullptr));
      }
      app::RunInstruments instruments;
      if (profile) instruments.probe = &probe;
      instruments.trial_jobs = policy.trial_jobs;
      instruments.trial_executor = policy.trial_executor;
      report = app::execute_prepared(*prepared, trial.spec, instruments,
                                     workspace);
      if (profile) {
        r.profile = std::make_shared<const obs::RunProfile>(
            app::take_run_profile(probe, report, trial.spec));
      }
    } else {
      report = run(trial.spec);
    }
    r.ok = true;
    r.num_nodes = report.num_nodes;
    r.num_edges = report.num_edges;
    r.rho_awk = report.rho_awk;
    r.synchronous = report.synchronous;
    r.all_awake = report.result.all_awake();
    r.awake_count = report.result.awake_count();
    r.messages = report.result.metrics.messages;
    r.bits = report.result.metrics.bits;
    r.time_units = report.result.metrics.time_units();
    r.rounds = report.result.metrics.rounds;
    r.wakeup_span = r.all_awake ? report.result.wakeup_span() : 0;
    r.awake_node_ticks = report.result.awake_node_ticks();
    r.advice_max_bits = report.advice.max_bits;
    r.advice_avg_bits = report.advice.avg_bits;
    // Digest before the result buffers are recycled. A pure function of the
    // trial's inputs — the currency of the shard/resume equivalence tests.
    r.result_digest = check::digest_run(report.result);
    if (!run && policy.reuse_workspace) {
      // Everything needed is extracted; hand the per-node result buffers
      // back so the next trial on this worker reuses their capacity.
      worker_workspace().recycle_result(std::move(report.result));
    }
  } catch (const std::exception& e) {
    r.ok = false;
    r.error = e.what();
  }
  r.wall_ms = ms_between(t0, Clock::now());
  return r;
}

/// execute_trial behind the result store: serve a recorded trial without
/// executing, record an executed one, and honour the die-after fault point.
TrialResult execute_or_fetch(const Trial& trial, const TrialFn& run,
                             bool profile, const PreparedPolicy& policy,
                             StoreContext& sc) {
  if (sc.store == nullptr) return execute_trial(trial, run, profile, policy);
  if (sc.serve_hits) {
    const store::Digest128 key = store::trial_key(trial.spec, sc.prepare_tag);
    if (const store::TrialRecord* rec =
            sc.store->lookup(key, trial.spec, sc.prepare_tag)) {
      TrialResult r;
      r.trial = trial;
      from_record(*rec, r);
      sc.hits.fetch_add(1, std::memory_order_relaxed);
      return r;
    }
  }
  sc.misses.fetch_add(1, std::memory_order_relaxed);
  TrialResult r = execute_trial(trial, run, profile, policy);
  sc.store->append(to_record(r, sc.prepare_tag));
  if (sc.die_after > 0 &&
      sc.executed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          sc.die_after) {
    // Fault injection: the record above is flushed, then this process dies
    // as abruptly as a machine failure would take it. A restarted worker
    // resumes from exactly this point via the store.
    std::raise(SIGKILL);
  }
  return r;
}

void accumulate(ConfigStats& stats, const TrialResult& r,
                bool require_all_awake) {
  ++stats.trials;
  if (!r.ok) {
    ++stats.errors;
    return;
  }
  if (require_all_awake && !r.all_awake) {
    ++stats.failures;
    return;
  }
  stats.messages.add(static_cast<double>(r.messages));
  stats.bits.add(static_cast<double>(r.bits));
  stats.time_units.add(r.time_units);
  stats.wakeup_span.add(static_cast<double>(r.wakeup_span));
  stats.awake_node_ticks.add(static_cast<double>(r.awake_node_ticks));
}

void append_stats_line(std::ostringstream& os, const char* name,
                       const SampleStats& s) {
  if (s.count() == 0) return;
  os << "  " << name << ": mean " << s.mean() << "  sd " << s.stddev()
     << "  min " << s.min() << "  median " << s.median() << "  max "
     << s.max() << "\n";
}

}  // namespace

std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t trial_index) {
  // One SplitMix64 step over a state that folds the base seed with the
  // trial index; the odd multiplier spreads adjacent indices across the
  // whole state space. Distinct from the mix_seed(seed, 0xA..0xD) streams
  // run_experiment derives internally, so campaign seeds never collide with
  // a trial's own sub-streams by construction of the tag.
  std::uint64_t state =
      base_seed ^ ((trial_index + 0x51CEB00Dull) * 0xD1B54A32D192ED03ull);
  return splitmix64(state);
}

GridAxis parse_grid_axis(const std::string& text) {
  const auto eq = text.find('=');
  RISE_CHECK_MSG(eq != std::string::npos && eq > 0,
                 "grid axis '" << text << "' is not PARAM=a,b,c");
  GridAxis axis;
  axis.param = text.substr(0, eq);
  std::string values = text.substr(eq + 1);
  std::istringstream is(values);
  std::string field;
  while (std::getline(is, field, ',')) {
    RISE_CHECK_MSG(!field.empty(),
                   "grid axis '" << text << "' has an empty value");
    axis.values.push_back(field);
  }
  RISE_CHECK_MSG(!axis.values.empty(),
                 "grid axis '" << text << "' has no values");
  // Validate the param name eagerly so a typo fails before any trial runs.
  app::ExperimentSpec probe;
  apply_grid_param(probe, axis.param, axis.values.front());
  return axis;
}

void apply_grid_param(app::ExperimentSpec& spec, const std::string& param,
                      const std::string& value) {
  if (param == "graph") {
    spec.graph = value;
  } else if (param == "schedule") {
    spec.schedule = value;
  } else if (param == "algo" || param == "algorithm") {
    spec.algorithm = value;
  } else if (param == "delay") {
    spec.delay = value;
  } else {
    RISE_CHECK_MSG(false, "unknown grid param '"
                              << param
                              << "' (expected graph|schedule|algo|delay)");
  }
}

std::size_t config_count(const CampaignPlan& plan) {
  std::size_t count = 1;
  for (const auto& axis : plan.grid) {
    RISE_CHECK_MSG(!axis.values.empty(),
                   "grid axis '" << axis.param << "' has no values");
    count *= axis.values.size();
  }
  return count;
}

namespace {

/// The grid-substituted spec of config `config_index` (seed = the base
/// seed). Shared by expand_trials and aggregate_campaign so the shard merge
/// path re-derives exactly the specs the trials were expanded from.
app::ExperimentSpec config_spec_at(const CampaignPlan& plan,
                                   std::size_t config_index) {
  app::ExperimentSpec spec = plan.base;
  // Decode the config index in mixed radix, last grid axis fastest.
  std::size_t rem = config_index;
  for (std::size_t a = plan.grid.size(); a-- > 0;) {
    const GridAxis& axis = plan.grid[a];
    apply_grid_param(spec, axis.param, axis.values[rem % axis.values.size()]);
    rem /= axis.values.size();
  }
  return spec;
}

}  // namespace

std::vector<Trial> expand_trials(const CampaignPlan& plan) {
  RISE_CHECK_MSG(plan.num_seeds >= 1, "campaign needs at least one seed");
  const std::size_t configs = config_count(plan);
  std::vector<Trial> trials;
  trials.reserve(configs * plan.num_seeds);
  for (std::size_t c = 0; c < configs; ++c) {
    const app::ExperimentSpec config_spec = config_spec_at(plan, c);
    for (std::size_t s = 0; s < plan.num_seeds; ++s) {
      Trial t;
      t.index = c * plan.num_seeds + s;
      t.config_index = c;
      t.seed_index = s;
      t.spec = config_spec;
      t.spec.seed = plan.seed_mode == SeedMode::kSplitMix
                        ? trial_seed(plan.base.seed, t.index)
                        : plan.base.seed + s;
      trials.push_back(std::move(t));
    }
  }
  return trials;
}

CampaignResult run_campaign(const CampaignPlan& plan,
                            const CampaignOptions& options) {
  RISE_CHECK_MSG(!plan.run || plan.prepare_mode == PrepareMode::kPerTrial,
                 "PrepareMode::kSharedConfig requires the default trial "
                 "function (a custom TrialFn has no preparation seam)");
  RISE_CHECK_MSG(options.store == nullptr || !plan.run,
                 "the result store requires the default trial function "
                 "(records are keyed by spec strings, which do not describe "
                 "what a custom TrialFn computes)");
  std::vector<Trial> trials = expand_trials(plan);
  if (!options.shard.whole_campaign()) {
    trials = shard_trials(trials, options.shard, options.shard_strategy);
  }

  // Profiling needs the probe seam; a custom TrialFn has none.
  const bool profile = plan.profile && !plan.run;

  PreparedConfigCache cache;
  PreparedPolicy policy;
  policy.shared_config = plan.prepare_mode == PrepareMode::kSharedConfig;
  policy.prepare_seed = plan.base.seed;
  policy.reuse_workspace = !plan.run && plan.reuse;
  // The cache only pays off when trials can actually share a preparation,
  // i.e. when the prep seed is per-config rather than per-trial.
  if (policy.shared_config && plan.reuse) policy.cache = &cache;

  StoreContext sc;
  sc.store = options.store;
  // A stored record carries no RunProfile, so a profiled campaign cannot be
  // served from the store — it still writes through, warming the store for
  // later unprofiled runs.
  sc.serve_hits = !profile;
  sc.die_after = options.die_after;
  if (sc.store != nullptr) {
    sc.prepare_tag = policy.shared_config
                         ? store::prepare_tag_shared(plan.base.seed)
                         : store::prepare_tag_per_trial();
  }

  CampaignResult result;
  result.jobs =
      options.jobs == 0 ? ThreadPool::hardware_threads() : options.jobs;
  // Slots are positional over this (possibly shard-filtered) trial subset;
  // each TrialResult keeps its global index in trial.index.
  result.trials.resize(trials.size());

  const auto t0 = Clock::now();
  {
    ProgressReporter progress(trials.size(), options.progress);
    // trial_jobs > 1: the pool carries jobs x trial_jobs threads so every
    // concurrently-running trial can fan its rounds out, and an admission
    // gate caps concurrent trials at `jobs` — the spare threads serve
    // round chunks (ThreadPool::run_chunks) instead of extra trials. With
    // trial_jobs == 1 this is exactly the historical pool.
    const std::uint32_t trial_jobs =
        std::max<std::uint32_t>(1, options.trial_jobs);
    ThreadPool pool(result.jobs * trial_jobs);
    PoolChunkExecutor executor(&pool);
    if (trial_jobs > 1) {
      policy.trial_jobs = trial_jobs;
      policy.trial_executor = &executor;
    }
    std::mutex admit_mu;
    std::condition_variable admit_cv;
    std::size_t running = 0;
    const bool gate = trial_jobs > 1;
    for (std::size_t i = 0; i < trials.size(); ++i) {
      if (gate) {
        std::unique_lock<std::mutex> lock(admit_mu);
        admit_cv.wait(lock, [&] { return running < result.jobs; });
        ++running;
      }
      // &trials[i] and &result.trials[i] stay valid: neither vector is
      // resized while the pool runs, and each slot is written by exactly
      // one task.
      const Trial* trial = &trials[i];
      TrialResult* slot = &result.trials[i];
      pool.submit([trial, slot, &plan, &policy, &progress, profile, &sc,
                   &admit_mu, &admit_cv, &running, gate] {
        *slot = execute_or_fetch(*trial, plan.run, profile, policy, sc);
        progress.tick();
        if (gate) {
          {
            std::lock_guard<std::mutex> lock(admit_mu);
            --running;
          }
          admit_cv.notify_one();
        }
      });
    }
    pool.wait_idle();
    progress.finish();
  }
  result.wall_ms = ms_between(t0, Clock::now());
  result.store_hits = sc.hits.load(std::memory_order_relaxed);
  result.store_misses = sc.misses.load(std::memory_order_relaxed);
  if (!plan.run) {
    // Store-served trials prepare nothing; only executed ones count.
    const std::uint64_t executed =
        sc.store != nullptr ? result.store_misses
                            : static_cast<std::uint64_t>(trials.size());
    result.prepared_configs =
        policy.cache != nullptr ? cache.misses() : executed;
    result.prepared_cache_hits = policy.cache != nullptr ? cache.hits() : 0;
  }
  result.trials_per_sec =
      result.wall_ms > 0.0
          ? static_cast<double>(trials.size()) / (result.wall_ms / 1000.0)
          : 0.0;

  aggregate_campaign(plan, result);

  if (options.sink != nullptr) {
    for (const TrialResult& r : result.trials) options.sink->trial(r);
    options.sink->summary(result);
  }
  return result;
}

void aggregate_campaign(const CampaignPlan& plan, CampaignResult& result) {
  // Aggregate in result.trials order — the caller guarantees trial-index
  // order, fixed regardless of which worker finished first — so SampleStats
  // sees the same insertion sequence for every jobs value, shard split, and
  // merge path.
  result.configs.assign(config_count(plan), ConfigStats{});
  result.total = ConfigStats{};
  result.profile = obs::ProfileAggregate{};
  for (std::size_t c = 0; c < result.configs.size(); ++c) {
    result.configs[c].spec = config_spec_at(plan, c);
  }
  for (const TrialResult& r : result.trials) {
    RISE_CHECK_MSG(r.trial.config_index < result.configs.size(),
                   "trial " << r.trial.index << " names config "
                            << r.trial.config_index << " of a plan with only "
                            << result.configs.size());
    accumulate(result.configs[r.trial.config_index], r,
               plan.require_all_awake);
    accumulate(result.total, r, plan.require_all_awake);
    if (r.profile != nullptr) result.profile.merge(*r.profile);
  }
  result.total.spec = plan.base;
}

std::string format_campaign(const CampaignResult& result) {
  std::ostringstream os;
  os << "campaign  : " << result.configs.size() << " config(s) x "
     << (result.configs.empty() || result.configs[0].trials == 0
             ? 0
             : result.configs[0].trials)
     << " seed(s) = " << result.trials.size() << " trials, jobs "
     << result.jobs << "\n";
  const bool multi = result.configs.size() > 1;
  for (std::size_t c = 0; c < result.configs.size(); ++c) {
    const ConfigStats& config = result.configs[c];
    if (multi) {
      os << "config " << c << "  : graph=" << config.spec.graph
         << " schedule=" << config.spec.schedule
         << " algo=" << config.spec.algorithm
         << " delay=" << config.spec.delay << "\n";
    }
    os << "  runs: " << config.trials << " (" << config.failures
       << " incomplete, " << config.errors << " errors)\n";
    append_stats_line(os, "messages ", config.messages);
    append_stats_line(os, "time     ", config.time_units);
    append_stats_line(os, "wake span", config.wakeup_span);
    if (config.errors > 0) {
      // Surface one representative error so a misconfigured campaign is
      // diagnosable from the summary alone.
      for (const TrialResult& r : result.trials) {
        if (r.trial.config_index == c && !r.ok) {
          os << "  first error: " << r.error << "\n";
          break;
        }
      }
    }
  }
  if (multi) {
    os << "total     : " << result.total.trials << " runs ("
       << result.total.failures << " incomplete, " << result.total.errors
       << " errors)\n";
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "wall      : %.1f ms (%.1f trials/s)\n",
                result.wall_ms, result.trials_per_sec);
  os << buf;
  return os.str();
}

}  // namespace rise::runner
