#include "runner/prepared.hpp"

#include <sstream>
#include <utility>

namespace rise::runner {

std::string prepared_config_key(const app::ExperimentSpec& spec) {
  std::ostringstream key;
  // '\n' never appears inside a spec field (the grammars are ':'- and
  // ','-separated single-line tokens), so it is a safe field separator.
  key << spec.graph << '\n' << spec.algorithm << '\n' << spec.seed;
  return key.str();
}

std::shared_ptr<const app::PreparedExperiment>
PreparedConfigCache::get_or_prepare(const app::ExperimentSpec& spec) {
  const std::string key = prepared_config_key(spec);
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = entries_.find(key); it != entries_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  auto prepared = std::make_shared<const app::PreparedExperiment>(
      app::prepare_experiment(spec));
  entries_.emplace(key, prepared);
  return prepared;
}

std::size_t PreparedConfigCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t PreparedConfigCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

void PreparedConfigCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

std::uint64_t PreparedConfigCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace rise::runner
