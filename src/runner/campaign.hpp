// Parallel experiment campaigns: expand an app::ExperimentSpec × seed range
// × parameter grid into independent trials, execute them on a work-stealing
// ThreadPool, and aggregate the results deterministically.
//
// Determinism contract: each trial's RNG seed is derived via SplitMix64 from
// (base_seed, trial_index) — never from thread identity or completion order
// — and per-trial results are collected into a slot indexed by trial and
// aggregated in trial-index order after the pool drains. A campaign
// therefore produces bit-identical per-trial records and aggregate
// statistics for any --jobs value and any scheduling interleaving; only the
// wall-clock fields differ (and those are kept out of the aggregates).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "app/spec.hpp"
#include "runner/prepared.hpp"
#include "support/stats.hpp"

namespace rise::store {
class ResultStore;
}  // namespace rise::store

namespace rise::runner {

/// How trial seeds derive from the campaign's base seed.
enum class SeedMode {
  /// seed = SplitMix64(base_seed, trial_index): decorrelated streams, the
  /// campaign default (see file comment).
  kSplitMix,
  /// seed = base_seed + seed_index: the documented app::run_sweep contract
  /// (seeds base, base+1, ...), kept for reproducing legacy sweeps.
  kSequential,
};

/// SplitMix64-derived seed for one trial; pure function of its arguments.
std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t trial_index);

/// One axis of the parameter grid: the spec field named `param` (one of
/// "graph" | "schedule" | "algo" | "delay") takes each of `values` in turn.
struct GridAxis {
  std::string param;
  std::vector<std::string> values;
};

/// Parses "PARAM=a,b,c" (the rise_cli --grid argument). Values must be
/// non-empty and comma-free; the spec grammars themselves never use commas
/// except in the rare set:a,b,c schedule, which a grid cannot sweep.
GridAxis parse_grid_axis(const std::string& text);

/// Substitutes one grid value into the spec; CheckError on unknown param.
void apply_grid_param(app::ExperimentSpec& spec, const std::string& param,
                      const std::string& value);

struct Trial {
  std::size_t index = 0;  ///< global trial index (config-major, seed-minor)
  std::size_t config_index = 0;
  std::size_t seed_index = 0;
  app::ExperimentSpec spec;  ///< grid-substituted; seed = the derived seed
};

/// Scalar observables of one finished trial. The per-node vectors of
/// sim::RunResult are deliberately dropped so retaining thousands of trials
/// stays cheap.
struct TrialResult {
  Trial trial;
  bool ok = false;    ///< ran to completion without throwing
  std::string error;  ///< exception text when !ok

  // Topology and model (valid when ok).
  std::uint32_t num_nodes = 0;
  std::size_t num_edges = 0;
  std::uint32_t rho_awk = 0;
  bool synchronous = false;

  // Outcome metrics (valid when ok).
  bool all_awake = false;
  std::uint32_t awake_count = 0;
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  double time_units = 0.0;
  std::uint64_t rounds = 0;
  std::uint64_t wakeup_span = 0;       ///< only meaningful when all_awake
  std::uint64_t awake_node_ticks = 0;
  std::size_t advice_max_bits = 0;
  double advice_avg_bits = 0.0;

  /// Wall-clock duration of this trial. Nondeterministic — excluded from
  /// every aggregate; reported per trial and in the summary timing block.
  double wall_ms = 0.0;

  /// check::digest_run of the trial's full RunResult (0 when !ok). A pure
  /// function of the trial's inputs, so it is the unit the shard/resume
  /// equivalence invariant is stated over: any shard split or store-resumed
  /// run must reproduce the single-process digest stream bit for bit.
  std::uint64_t result_digest = 0;

  /// True when this result was served from the content-addressed result
  /// store instead of being executed (see CampaignOptions::store).
  bool from_store = false;

  /// Per-run observability profile, populated only when CampaignPlan::profile
  /// is set (and the plan uses the default run function). shared_ptr keeps
  /// TrialResult cheap to copy; null otherwise. Timer wall-clock fields inside
  /// are nondeterministic, but everything the aggregate consumes is not.
  std::shared_ptr<const obs::RunProfile> profile;
};

/// Aggregates over the successful trials of one grid config (or of the
/// whole campaign). Failure accounting matches app::run_sweep: a trial that
/// runs but leaves nodes asleep is a failure; a trial that throws is an
/// error; neither contributes samples. (Plans with require_all_awake ==
/// false aggregate every ok trial instead — see CampaignPlan.)
struct ConfigStats {
  app::ExperimentSpec spec;  ///< grid-substituted; seed = the base seed
  std::size_t trials = 0;
  std::size_t failures = 0;
  std::size_t errors = 0;
  SampleStats messages;
  SampleStats bits;
  SampleStats time_units;
  SampleStats wakeup_span;
  SampleStats awake_node_ticks;
};

struct CampaignResult {
  std::vector<TrialResult> trials;  ///< trial-index order
  std::vector<ConfigStats> configs;
  ConfigStats total;
  std::size_t jobs = 1;       ///< resolved worker count
  double wall_ms = 0.0;       ///< whole-campaign wall clock
  double trials_per_sec = 0.0;

  /// Merged profile across all profiled trials, in trial-index order (so
  /// its SampleStats see a fixed insertion sequence for any --jobs value).
  /// Empty (trials == 0) unless CampaignPlan::profile was set.
  obs::ProfileAggregate profile;

  /// Preparations actually built (cache misses under kSharedConfig + reuse;
  /// one per trial otherwise; 0 with a custom TrialFn).
  std::uint64_t prepared_configs = 0;
  /// Trials served by an already-built preparation (kSharedConfig + reuse
  /// only; 0 otherwise).
  std::uint64_t prepared_cache_hits = 0;

  /// Result-store traffic (0 unless CampaignOptions::store was set): trials
  /// served from the store vs executed and appended to it.
  std::uint64_t store_hits = 0;
  std::uint64_t store_misses = 0;
};

/// Observer of a finished campaign. trial() is invoked once per trial in
/// strictly increasing trial-index order (after the pool has drained, on the
/// caller's thread), then summary() once.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void trial(const TrialResult& result) = 0;
  virtual void summary(const CampaignResult& result) = 0;
};

/// Computes one trial; defaults to app::run_experiment. Benches whose
/// workloads are not expressible as spec strings (the lower-bound families)
/// supply their own function and still get parallel execution, seed
/// derivation, aggregation, and JSON output. Must be thread-safe for
/// concurrent calls with distinct specs.
using TrialFn = std::function<app::ExperimentReport(const app::ExperimentSpec&)>;

struct CampaignPlan {
  app::ExperimentSpec base;
  std::vector<GridAxis> grid;  ///< cartesian product, last axis fastest
  std::size_t num_seeds = 1;
  SeedMode seed_mode = SeedMode::kSplitMix;
  TrialFn run;  ///< empty = app::run_experiment

  /// With the default (true), a trial that leaves nodes asleep is a failure
  /// and contributes no samples. Lower-bound harnesses whose success
  /// criterion is not "everyone awake" (e.g. NIH probing, where most of the
  /// family intentionally sleeps) set this to false so every completed
  /// trial is aggregated.
  bool require_all_awake = true;

  /// Attach an obs::Probe to every trial and merge the resulting RunProfiles
  /// into CampaignResult::profile. Only honoured with the default run
  /// function (a custom TrialFn has no seam to thread a probe through); the
  /// probe observes without perturbing, so profiled trials produce the same
  /// metrics and digests as unprofiled ones.
  bool profile = false;

  /// Where each trial's immutable inputs come from (see runner/prepared.hpp).
  /// kSharedConfig requires the default run function and changes trial
  /// semantics (one topology per configuration); kPerTrial preserves legacy
  /// digests exactly.
  PrepareMode prepare_mode = PrepareMode::kPerTrial;

  /// Execution-level reuse: recycle per-worker engine workspaces across
  /// trials, and (under kSharedConfig) serve all trials of a configuration
  /// from one cached preparation. Never affects results — for any fixed
  /// prepare_mode, digests are bit-identical with reuse on or off; the
  /// differential tests in test_runner_campaign pin this. Off exists for
  /// benchmarking the rebuild path and for bisecting.
  bool reuse = true;
};

/// One shard of an N-way trial-index split (see runner/shard.hpp for the
/// planner and the multi-process orchestrator built on top).
struct ShardSpec {
  std::uint32_t index = 0;  ///< in [0, count)
  std::uint32_t count = 1;  ///< 1 = the whole campaign (the default)

  bool whole_campaign() const { return count <= 1; }
};

/// How trial indices map onto shards. Both are deterministic; per-trial
/// results are identical either way (seed-partition independence tests
/// sweep both), they differ only in load shape.
enum class ShardStrategy {
  /// index % count == shard: interleaves configs across workers (default).
  kRoundRobin,
  /// Contiguous blocks of ceil(total/count) indices per shard.
  kBlock,
};

struct CampaignOptions {
  std::size_t jobs = 1;        ///< worker threads; 0 = all hardware threads
  bool progress = false;       ///< completed/total + trials/s + ETA on stderr
  ResultSink* sink = nullptr;  ///< optional observer (e.g. JsonResultSink)

  /// Intra-trial parallelism (synchronous runs only): each trial steps its
  /// rounds in this many chunks on the campaign pool. The pool is sized
  /// jobs x trial_jobs, and at most `jobs` trials run concurrently (an
  /// admission gate keeps the product from oversubscribing), so --jobs x
  /// --trial-jobs never exceeds the thread budget. Results are bit-identical
  /// for any value; asynchronous trials ignore it.
  std::uint32_t trial_jobs = 1;

  /// Execute only this shard's trials (global trial indices are preserved
  /// in the results). The default runs the whole campaign.
  ShardSpec shard;
  ShardStrategy shard_strategy = ShardStrategy::kRoundRobin;

  /// Content-addressed trial cache (src/store). When set (default run
  /// function only): a trial whose key has a record is served from the
  /// store without executing; every executed trial is appended. Profiled
  /// campaigns bypass lookups (a cached record has no RunProfile to serve)
  /// but still append. Serving from the store never changes results — the
  /// record holds exactly the fields TrialResult would, digest included.
  store::ResultStore* store = nullptr;

  /// Fault injection for resume tests (0 = off): after this many executed
  /// (store-miss) trials have been recorded, the process SIGKILLs itself —
  /// a deterministic stand-in for a worker crashing mid-campaign.
  int die_after = 0;
};

/// Number of grid configurations (product of axis sizes; 1 with no grid).
std::size_t config_count(const CampaignPlan& plan);

/// The full trial list in index order. CheckError on an invalid grid.
std::vector<Trial> expand_trials(const CampaignPlan& plan);

/// Runs the campaign. Per-trial exceptions are captured into TrialResult;
/// plan-level errors (bad grid axis, zero seeds) throw.
CampaignResult run_campaign(const CampaignPlan& plan,
                            const CampaignOptions& options = {});

/// Rebuilds result.configs / result.total / result.profile from
/// result.trials, aggregating in vector order (the caller guarantees that
/// is trial-index order). Shared by run_campaign and the shard merge path
/// (runner/shard.cpp) so a merged N-shard campaign aggregates with exactly
/// the single-process algebra. Config specs are re-derived from the plan,
/// so configs whose trials live on other shards still carry their spec.
void aggregate_campaign(const CampaignPlan& plan, CampaignResult& result);

/// Human-readable multi-line summary (per-config and total stats).
std::string format_campaign(const CampaignResult& result);

}  // namespace rise::runner
