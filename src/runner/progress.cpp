#include "runner/progress.hpp"

#include <cstdio>

namespace rise::runner {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

ProgressReporter::ProgressReporter(std::size_t total, bool enabled, Sink sink)
    : total_(total),
      enabled_(enabled),
      sink_(std::move(sink)),
      start_(Clock::now()) {
  if (!sink_) {
    sink_ = [](const std::string& line) {
      std::fputs(line.c_str(), stderr);
      std::fflush(stderr);
    };
  }
}

void ProgressReporter::tick() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  // Snapshot under the lock: the decision below must see the count this
  // tick produced, not whatever concurrent ticks push done_ to later.
  const std::size_t done = ++done_;
  const auto now = Clock::now();
  if (done < total_ && ms_between(last_print_, now) < 200.0) return;
  print_locked(done, now);
}

void ProgressReporter::update(std::size_t done) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (done <= done_) return;  // polled counts may briefly regress; keep max
  done_ = done;
  const auto now = Clock::now();
  if (done < total_ && ms_between(last_print_, now) < 200.0) return;
  print_locked(done, now);
}

void ProgressReporter::finish() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  finished_ = true;
  // The final tick may have lost the done == total_ race to a concurrent
  // earlier tick (which printed a stale count and swallowed the throttle
  // window) — emit the 100% line now if nobody has.
  if (last_printed_done_ != done_) print_locked(done_, Clock::now());
  if (printed_any_) sink_("\n");
}

void ProgressReporter::print_locked(std::size_t done, Clock::time_point now) {
  last_print_ = now;
  last_printed_done_ = done;
  printed_any_ = true;
  const double elapsed_s = ms_between(start_, now) / 1000.0;
  const double rate =
      elapsed_s > 0.0 ? static_cast<double>(done) / elapsed_s : 0.0;
  const double eta_s =
      rate > 0.0 ? static_cast<double>(total_ - done) / rate : 0.0;
  const int percent =
      total_ > 0 ? static_cast<int>(100 * done / total_) : 100;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "\rcampaign: %zu/%zu trials (%d%%)  %.1f trials/s  eta %.0fs ",
                done, total_, percent, rate, eta_s);
  sink_(buf);
}

}  // namespace rise::runner
