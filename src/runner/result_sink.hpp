// ResultSink implementations for the campaign runner. JsonResultSink writes
// one machine-readable record per trial plus a summary block:
//
//   { "schema_version": 2,
//     "tool": "rise_campaign",
//     "base": { graph/schedule/algo/delay/seed },
//     "seed_mode": "splitmix" | "sequential",
//     "num_seeds": N,
//     "prepare_mode": "per_trial" | "shared_config", "reuse": bool,
//     "jobs": J,
//     "provenance": { hostname, commit, started_at (ISO-8601 UTC),
//                     shard_index, shard_count, merged },
//     "grid": [ {"param": ..., "values": [...]}, ... ],
//     "trials": [ { trial, config, seed_index, seed, specs, n, m, rho_awk,
//                   outcome, messages, bits, time_units, rounds,
//                   wakeup_span, awake_node_ticks, advice, digest, cached,
//                   run_profile (opt-in), wall_ms }, ... ],
//     "summary": { per-config and total SampleStats — deterministic —
//                  plus "store": {enabled, hits, misses} },
//     "timing":  { wall_ms, trials_per_sec — nondeterministic } }
//
// Everything outside "provenance", "timing", the per-trial "wall_ms" /
// "cached" fields, and the summary "store" counters is a pure function of
// the plan, so two runs of the same campaign at different --jobs values (or
// shard splits, or resumed from the result store) differ only in those
// fields. In particular the per-trial "digest" stream is the invariant the
// shard orchestrator's merge is checked against.
//
// Schema history: v2 added provenance, per-trial digest/cached, the summary
// store block, and optional embedded run_profile objects (v1 had none).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "runner/campaign.hpp"
#include "support/json.hpp"

namespace rise::runner {

/// Version of the JSON results schema above. Bump on breaking changes.
inline constexpr std::uint64_t kResultsSchemaVersion = 2;

/// Where and by whom a results document was produced. Nondeterministic by
/// nature (host, time) — kept in its own header block so deterministic
/// comparisons can skip it wholesale.
struct Provenance {
  std::string hostname;    ///< gethostname(); "unknown" on failure
  std::string commit;      ///< $RISE_COMMIT or $GITHUB_SHA; "unknown" else
  std::string started_at;  ///< ISO-8601 UTC, e.g. "2026-08-08T12:34:56Z"
  std::uint32_t shard_index = 0;  ///< writing process's shard (0 unsharded)
  std::uint32_t shard_count = 1;
  bool merged = false;  ///< true for the orchestrator's merged document
};

/// Fills hostname/commit/started_at from the environment and stamps the
/// given shard identity.
Provenance collect_provenance(const ShardSpec& shard = {});

struct SinkOptions {
  Provenance provenance;
  /// Write each profiled trial's full run_profile object into its trial
  /// record. Off by default (documents get large); shard workers turn it on
  /// so the orchestrator can re-merge profiles with the exact in-process
  /// algebra (obs::profile_from_json + ProfileAggregate::merge).
  bool embed_profiles = false;
  /// Reflected into the summary "store" block (the hit/miss counters come
  /// from CampaignResult).
  bool store_enabled = false;
};

class JsonResultSink : public ResultSink {
 public:
  /// Writes the header immediately; summary() closes the document. The
  /// stream must outlive the sink. The default options collect provenance
  /// for an unsharded local run.
  JsonResultSink(std::ostream& os, const CampaignPlan& plan, std::size_t jobs,
                 SinkOptions options = {.provenance = collect_provenance()});

  void trial(const TrialResult& result) override;
  void summary(const CampaignResult& result) override;

 private:
  void write_stats(const char* name, const SampleStats& stats);
  void write_config_stats(const ConfigStats& stats);

  json::Writer writer_;
  SinkOptions options_;
};

}  // namespace rise::runner
