// ResultSink implementations for the campaign runner. JsonResultSink writes
// one machine-readable record per trial plus a summary block:
//
//   { "schema_version": 1,
//     "tool": "rise_campaign",
//     "base": { graph/schedule/algo/delay/seed },
//     "seed_mode": "splitmix" | "sequential",
//     "num_seeds": N,
//     "prepare_mode": "per_trial" | "shared_config", "reuse": bool,
//     "jobs": J,
//     "grid": [ {"param": ..., "values": [...]}, ... ],
//     "trials": [ { trial, config, seed_index, seed, specs, n, m, rho_awk,
//                   outcome, messages, bits, time_units, rounds,
//                   wakeup_span, awake_node_ticks, advice, wall_ms }, ... ],
//     "summary": { per-config and total SampleStats — deterministic },
//     "timing":  { wall_ms, trials_per_sec — nondeterministic } }
//
// Everything outside "timing" and the per-trial "wall_ms" fields is a pure
// function of the plan, so two runs of the same campaign at different --jobs
// values differ only in those fields.
#pragma once

#include <cstdint>
#include <ostream>

#include "runner/campaign.hpp"
#include "support/json.hpp"

namespace rise::runner {

/// Version of the JSON results schema above. Bump on breaking changes.
inline constexpr std::uint64_t kResultsSchemaVersion = 1;

class JsonResultSink : public ResultSink {
 public:
  /// Writes the header immediately; summary() closes the document. The
  /// stream must outlive the sink.
  JsonResultSink(std::ostream& os, const CampaignPlan& plan,
                 std::size_t jobs);

  void trial(const TrialResult& result) override;
  void summary(const CampaignResult& result) override;

 private:
  void write_stats(const char* name, const SampleStats& stats);
  void write_config_stats(const ConfigStats& stats);

  json::Writer writer_;
};

}  // namespace rise::runner
