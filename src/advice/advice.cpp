#include "advice/advice.hpp"

namespace rise::advice {

sim::Instance::AdviceStats apply_oracle(sim::Instance& instance,
                                        const AdvisingOracle& oracle) {
  instance.set_advice(oracle.advise(instance));
  return instance.advice_stats();
}

}  // namespace rise::advice
