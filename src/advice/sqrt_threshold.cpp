#include "advice/sqrt_threshold.hpp"

#include <cmath>

#include "advice/fip06.hpp"
#include "advice/tree_advice_common.hpp"
#include "support/check.hpp"

namespace rise::advice {

namespace {

class SqrtThresholdOracle final : public AdvisingOracle {
 public:
  SqrtThresholdOracle(graph::NodeId root, double threshold)
      : root_(root), threshold_(threshold) {}

  std::vector<BitString> advise(const sim::Instance& instance) const override {
    const auto& g = instance.graph();
    RISE_CHECK_MSG(graph::is_connected(g),
                   "tree advising schemes require a connected graph");
    const auto tree = graph::bfs_tree(g, root_);
    const double threshold =
        threshold_ > 0.0 ? threshold_
                         : std::sqrt(static_cast<double>(g.num_nodes()));
    std::vector<BitString> advice(g.num_nodes());
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      const auto ports = tree_ports(instance, tree, u);
      BitWriter w;
      if (static_cast<double>(ports.size()) > threshold) {
        w.write_bit(true);  // high degree tree node: broadcast everything
      } else {
        w.write_bit(false);
        const unsigned width = std::max(1u, bit_width_for(g.degree(u)));
        w.write_gamma(ports.size());
        for (sim::Port p : ports) w.write_bits(p, width);
      }
      advice[u] = w.take();
    }
    return advice;
  }

 private:
  graph::NodeId root_;
  double threshold_;
};

class SqrtThresholdProcess final : public sim::Process {
 public:
  void on_wake(sim::Context& ctx, sim::WakeCause cause) override {
    if (cause == sim::WakeCause::kAdversary) propagate(ctx, sim::kInvalidPort);
  }

  void on_message(sim::Context& ctx, const sim::Incoming& in) override {
    propagate(ctx, in.port);
  }

 private:
  void propagate(sim::Context& ctx, sim::Port skip) {
    if (done_) return;
    done_ = true;
    obs::NodeProbe probe = ctx.probe();
    probe.count("advice.decodes");
    BitReader r(ctx.advice());
    const sim::Message wake = sim::make_message(kTreeWake, {}, 8);
    if (r.read_bit()) {
      probe.phase("advice.broadcast");
      probe.node_class("high_degree");
      for (sim::Port p = 0; p < ctx.degree(); ++p) {
        if (p != skip) ctx.send(p, wake);
      }
      return;
    }
    probe.phase("advice.forward");
    const unsigned width = std::max(1u, bit_width_for(ctx.degree()));
    const std::uint64_t count = r.read_gamma();
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto p = static_cast<sim::Port>(r.read_bits(width));
      if (p != skip) ctx.send(p, wake);
    }
  }

  bool done_ = false;
};

/// Kernel port of SqrtThresholdProcess: one done-flag per node.
class SqrtThresholdKernel {
 public:
  struct State {
    bool done = false;
  };
  using States = std::vector<State>;

  void reset(const sim::Instance& instance, sim::RunWorkspace* workspace) {
    states_ = &sim::acquire_kernel_state(workspace, own_);
    states_->clear();
    states_->resize(instance.num_nodes());
  }

  template <class Ctx>
  void on_wake(Ctx& ctx, sim::WakeCause cause) {
    if (cause == sim::WakeCause::kAdversary) propagate(ctx, sim::kInvalidPort);
  }

  template <class Ctx>
  void on_message(Ctx& ctx, const sim::Incoming& in) {
    propagate(ctx, in.port);
  }

  template <class Ctx>
  void on_round(Ctx& ctx, std::span<const sim::Incoming> inbox) {
    for (const sim::Incoming& in : inbox) on_message(ctx, in);
  }

 private:
  template <class Ctx>
  void propagate(Ctx& ctx, sim::Port skip) {
    State& self = (*states_)[ctx.node()];
    if (self.done) return;
    self.done = true;
    obs::NodeProbe probe = ctx.probe();
    probe.count("advice.decodes");
    BitReader r(ctx.advice());
    const sim::Message wake = sim::make_message(kTreeWake, {}, 8);
    if (r.read_bit()) {
      probe.phase("advice.broadcast");
      probe.node_class("high_degree");
      for (sim::Port p = 0; p < ctx.degree(); ++p) {
        if (p != skip) ctx.send(p, wake);
      }
      return;
    }
    probe.phase("advice.forward");
    const unsigned width = std::max(1u, bit_width_for(ctx.degree()));
    const std::uint64_t count = r.read_gamma();
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto p = static_cast<sim::Port>(r.read_bits(width));
      if (p != skip) ctx.send(p, wake);
    }
  }

  States own_;
  States* states_ = nullptr;
};

}  // namespace

std::unique_ptr<AdvisingOracle> sqrt_threshold_oracle(graph::NodeId root,
                                                      double threshold) {
  return std::make_unique<SqrtThresholdOracle>(root, threshold);
}

sim::ProcessFactory sqrt_threshold_factory() {
  return [](sim::NodeId) { return std::make_unique<SqrtThresholdProcess>(); };
}

sim::KernelRunner sqrt_threshold_kernel() {
  return sim::make_kernel(SqrtThresholdKernel{});
}

AdvisingScheme sqrt_threshold_scheme(graph::NodeId root) {
  return {sqrt_threshold_oracle(root), sqrt_threshold_factory(),
          sqrt_threshold_kernel()};
}

}  // namespace rise::advice
