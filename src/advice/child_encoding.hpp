// Theorem 5(B): the child-encoding scheme (CEN) — a deterministic advising
// scheme in the asynchronous KT0 CONGEST model with O(D log n) time, O(n)
// messages, and a *maximum* advice length of only O(log n) bits.
//
// The O(log n) bound is impossible if every node must store all of its BFS
// children ports, so the oracle distributes that information among the
// children themselves (Sec. 4.2.1). Each node w receives the tuple
// (p_w, fc_w, next_w):
//   * p_w  — the port at w leading to its BFS parent;
//   * fc_w — the port at w leading to w's *first child*;
//   * next_w — a pair of port numbers AT W'S PARENT u identifying w's two
//     "next siblings": the children of u are arranged as a balanced binary
//     heap c_1, c_2, ..., c_t (ordered by port at u), and c_i stores the
//     ports of c_{2i} and c_{2i+1}.
//
// Wake-up protocol: an awake node notifies its parent (kCenWakeParent) and
// sends kCenWakeChild to its first child. A child receiving kCenWakeChild
// replies with its next_w pair (kCenNext), which lets the parent continue
// the binary dissemination among the siblings — so all t children of a node
// wake within 2*ceil(log2(t+1)) rounds using 2 messages per child. Every
// node sends at most 3 messages total (O(n) overall), each of O(log n) bits
// (CONGEST-safe), and the sibling heaps add only a log-factor to the O(D)
// tree depth.
#pragma once

#include <memory>

#include "advice/advice.hpp"

namespace rise::advice {

inline constexpr std::uint32_t kCenWakeChild = 0x0CE1;
inline constexpr std::uint32_t kCenNext = 0x0CE2;
inline constexpr std::uint32_t kCenWakeParent = 0x0CE3;

/// `arity` selects the sibling-dissemination structure: 2 (default) is the
/// balanced binary heap giving O(log n) latency per tree level; 1 is the
/// ablation — a plain linked list of siblings, whose per-level latency
/// degrades to Theta(max degree) while advice and messages are unchanged
/// (bench_ablations quantifies the gap).
std::unique_ptr<AdvisingOracle> child_encoding_oracle(graph::NodeId root = 0,
                                                      unsigned arity = 2);
sim::ProcessFactory child_encoding_factory();
sim::KernelRunner child_encoding_kernel();
AdvisingScheme child_encoding_scheme(graph::NodeId root = 0);

/// Decoded form of a node's CEN advice (exposed for tests).
struct CenAdvice {
  bool has_parent = false;
  sim::Port parent = sim::kInvalidPort;
  bool has_first_child = false;
  sim::Port first_child = sim::kInvalidPort;
  bool has_next_a = false;
  sim::Port next_a = sim::kInvalidPort;  // port at the parent
  bool has_next_b = false;
  sim::Port next_b = sim::kInvalidPort;  // port at the parent
};

CenAdvice decode_cen_advice(const BitString& bits);

}  // namespace rise::advice
