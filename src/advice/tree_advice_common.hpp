// Shared helpers for BFS-tree-based advising schemes (Cor. 1, Thm. 5A/5B):
// computing per-node tree ports from the oracle's view and encoding/decoding
// port sets.
#pragma once

#include <vector>

#include "graph/algorithms.hpp"
#include "sim/instance.hpp"
#include "support/bitio.hpp"

namespace rise::advice {

/// Ports of `u` that lead to its BFS-tree neighbors (parent first when
/// present, then children in child order).
std::vector<sim::Port> tree_ports(const sim::Instance& instance,
                                  const graph::BfsTree& tree,
                                  graph::NodeId u);

/// Appends the port set in whichever of two encodings is shorter:
///   format bit 0: gamma(count) then fixed-width ports;
///   format bit 1: a degree-long bitmap with tree ports set.
/// The decoder needs only the node's own degree.
void encode_port_set(BitWriter& w, const std::vector<sim::Port>& ports,
                     std::uint32_t degree);

/// Inverse of encode_port_set.
std::vector<sim::Port> decode_port_set(BitReader& r, std::uint32_t degree);

}  // namespace rise::advice
