// Theorem 5(A): deterministic advising scheme in the asynchronous KT0
// CONGEST model with O(D) time, O(n^{3/2}) messages, maximum advice length
// O(sqrt(n) log n), and average advice length O(log n).
//
// The oracle computes a BFS tree T. A node with at most sqrt(n) tree
// neighbors is a *low degree tree node* and receives the list of its tree
// ports (<= sqrt(n) entries of log n bits). A node with more than sqrt(n)
// tree neighbors is a *high degree tree node* and receives a single 1-bit;
// it simply broadcasts on all its ports when it wakes. Because T has n-1
// edges there are O(sqrt(n)) high degree tree nodes, so the total message
// count is O(sqrt(n)) * n + n * sqrt(n) = O(n^{3/2}).
#pragma once

#include <memory>

#include "advice/advice.hpp"

namespace rise::advice {

/// `threshold` overrides the high/low cutoff on tree degree; 0 means the
/// theorem's sqrt(n). Sweeping it (bench_ablations A4) exposes the
/// n*t + n^2/t trade-off whose optimum at t = sqrt(n) gives the O(n^{3/2})
/// bound.
std::unique_ptr<AdvisingOracle> sqrt_threshold_oracle(graph::NodeId root = 0,
                                                      double threshold = 0.0);
sim::ProcessFactory sqrt_threshold_factory();
sim::KernelRunner sqrt_threshold_kernel();
AdvisingScheme sqrt_threshold_scheme(graph::NodeId root = 0);

}  // namespace rise::advice
