// The "computing with advice" framework (Sec. 1.1, Sec. 4).
//
// An advising scheme is (1) an oracle that observes the whole instance —
// topology, IDs, and port mappings, but NOT the set of initially awake
// nodes — and assigns each node a bit string, and (2) a distributed
// algorithm that uses the advice. Time/message complexity of a scheme refer
// to the algorithm; advice length (max and average bits per node) is the
// third complexity measure of Table 1.
#pragma once

#include <memory>
#include <vector>

#include "sim/instance.hpp"
#include "sim/kernel.hpp"
#include "sim/process.hpp"

namespace rise::advice {

class AdvisingOracle {
 public:
  virtual ~AdvisingOracle() = default;

  /// Computes one advice string per node.
  virtual std::vector<BitString> advise(const sim::Instance& instance) const = 0;
};

/// Runs the oracle and installs the advice into the instance.
sim::Instance::AdviceStats apply_oracle(sim::Instance& instance,
                                        const AdvisingOracle& oracle);

/// An oracle + algorithm pair. `kernel` is the algorithm's flat-SoA fast
/// path (sim/kernel.hpp), bit-identical to `algorithm`; every shipped scheme
/// provides one.
struct AdvisingScheme {
  std::unique_ptr<AdvisingOracle> oracle;
  sim::ProcessFactory algorithm;
  sim::KernelRunner kernel;
};

}  // namespace rise::advice
