#include "advice/spanner_scheme.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "graph/spanner.hpp"
#include "support/bitio.hpp"
#include "support/check.hpp"
#include "support/math.hpp"

namespace rise::advice {

namespace {

struct NextPair {
  bool has_a = false;
  sim::Port a = sim::kInvalidPort;
  bool has_b = false;
  sim::Port b = sim::kInvalidPort;
};

struct NodeAdvice {
  bool has_first = false;
  sim::Port first = sim::kInvalidPort;
  // Keyed by the port (at this node) carrying the spanner edge; the value is
  // this node's next-sibling pair in the *neighbor's* heap (ports at the
  // neighbor).
  std::map<sim::Port, NextPair> records;
};

BitString encode_node_advice(const NodeAdvice& a) {
  BitWriter w;
  w.write_gamma(a.records.size());
  w.write_bit(a.has_first);
  if (a.has_first) w.write_gamma(a.first);
  for (const auto& [key, next] : a.records) {
    w.write_gamma(key);
    w.write_bit(next.has_a);
    if (next.has_a) w.write_gamma(next.a);
    w.write_bit(next.has_b);
    if (next.has_b) w.write_gamma(next.b);
  }
  return w.take();
}

NodeAdvice decode_node_advice(const BitString& bits) {
  NodeAdvice a;
  BitReader r(bits);
  const std::uint64_t count = r.read_gamma();
  a.has_first = r.read_bit();
  if (a.has_first) a.first = static_cast<sim::Port>(r.read_gamma());
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto key = static_cast<sim::Port>(r.read_gamma());
    NextPair next;
    next.has_a = r.read_bit();
    if (next.has_a) next.a = static_cast<sim::Port>(r.read_gamma());
    next.has_b = r.read_bit();
    if (next.has_b) next.b = static_cast<sim::Port>(r.read_gamma());
    a.records[key] = next;
  }
  return a;
}

class SpannerOracle final : public AdvisingOracle {
 public:
  /// k == 0 means "choose k = ceil(log2 n)" (Corollary 2).
  explicit SpannerOracle(unsigned k) : k_(k) {}

  std::vector<BitString> advise(const sim::Instance& instance) const override {
    const auto& g = instance.graph();
    unsigned k = k_;
    if (k == 0) {
      k = std::max<unsigned>(
          2, rise::floor_log2(std::max<std::uint64_t>(2, g.num_nodes())) + 1);
    }
    const graph::Graph spanner = graph::greedy_spanner(g, k);

    std::vector<NodeAdvice> advice(g.num_nodes());
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      // v's spanner neighbors ordered by port at v, laid out as a 1-based
      // binary heap.
      std::vector<std::pair<sim::Port, graph::NodeId>> heap;
      for (graph::NodeId u : spanner.neighbors(v)) {
        heap.push_back({instance.neighbor_to_port(v, u), u});
      }
      std::sort(heap.begin(), heap.end());
      if (heap.empty()) continue;
      advice[v].has_first = true;
      advice[v].first = heap[0].first;
      for (std::size_t i = 0; i < heap.size(); ++i) {
        const graph::NodeId w = heap[i].second;
        const sim::Port key_at_w = instance.neighbor_to_port(w, v);
        NextPair next;
        const std::size_t h = i + 1;
        if (2 * h - 1 < heap.size()) {
          next.has_a = true;
          next.a = heap[2 * h - 1].first;
        }
        if (2 * h < heap.size()) {
          next.has_b = true;
          next.b = heap[2 * h].first;
        }
        advice[w].records[key_at_w] = next;
      }
    }

    std::vector<BitString> out(g.num_nodes());
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      out[v] = encode_node_advice(advice[v]);
    }
    return out;
  }

 private:
  unsigned k_;
};

class SpannerProcess final : public sim::Process {
 public:
  void on_wake(sim::Context& ctx, sim::WakeCause cause) override {
    obs::NodeProbe probe = ctx.probe();
    probe.phase("advice.forward");
    probe.count("advice.decodes");
    advice_ = decode_node_advice(ctx.advice());
    if (cause == sim::WakeCause::kAdversary) start(ctx);
  }

  void on_message(sim::Context& ctx, const sim::Incoming& in) override {
    switch (in.msg.type) {
      case kSpWake: {
        // Reply with our next-sibling pair in the sender's heap so its
        // dissemination continues, then wake our own spanner neighborhood.
        const auto it = advice_.records.find(in.port);
        RISE_CHECK_MSG(it != advice_.records.end(),
                       "spanner wake arrived over a non-spanner edge");
        const NextPair& next = it->second;
        sim::PayloadWords payload{
            (next.has_a ? 1u : 0u) | (next.has_b ? 2u : 0u),
            next.has_a ? next.a : 0, next.has_b ? next.b : 0};
        ctx.send(in.port, sim::make_message(kSpNext, std::move(payload),
                                            8 + 2 * ctx.label_bits()));
        start(ctx);
        break;
      }
      case kSpNext: {
        const std::uint64_t flags = in.msg.payload[0];
        const sim::Message wake = sim::make_message(kSpWake, {}, 8);
        if (flags & 1u) {
          ctx.send(static_cast<sim::Port>(in.msg.payload[1]), wake);
        }
        if (flags & 2u) {
          ctx.send(static_cast<sim::Port>(in.msg.payload[2]), wake);
        }
        break;
      }
      default:
        RISE_CHECK_MSG(false,
                       "spanner scheme: unexpected message " << in.msg.type);
    }
  }

 private:
  void start(sim::Context& ctx) {
    if (started_) return;
    started_ = true;
    if (advice_.has_first) {
      ctx.send(advice_.first, sim::make_message(kSpWake, {}, 8));
    }
  }

  NodeAdvice advice_;
  bool started_ = false;
};

/// Kernel port of SpannerProcess: decoded advice + start flag per node.
class SpannerKernel {
 public:
  struct State {
    NodeAdvice advice;
    bool started = false;
  };
  using States = std::vector<State>;

  void reset(const sim::Instance& instance, sim::RunWorkspace* workspace) {
    states_ = &sim::acquire_kernel_state(workspace, own_);
    states_->clear();
    states_->resize(instance.num_nodes());
  }

  template <class Ctx>
  void on_wake(Ctx& ctx, sim::WakeCause cause) {
    State& self = (*states_)[ctx.node()];
    obs::NodeProbe probe = ctx.probe();
    probe.phase("advice.forward");
    probe.count("advice.decodes");
    self.advice = decode_node_advice(ctx.advice());
    if (cause == sim::WakeCause::kAdversary) start(ctx, self);
  }

  template <class Ctx>
  void on_message(Ctx& ctx, const sim::Incoming& in) {
    State& self = (*states_)[ctx.node()];
    switch (in.msg.type) {
      case kSpWake: {
        // Reply with our next-sibling pair in the sender's heap so its
        // dissemination continues, then wake our own spanner neighborhood.
        const auto it = self.advice.records.find(in.port);
        RISE_CHECK_MSG(it != self.advice.records.end(),
                       "spanner wake arrived over a non-spanner edge");
        const NextPair& next = it->second;
        sim::PayloadWords payload{
            (next.has_a ? 1u : 0u) | (next.has_b ? 2u : 0u),
            next.has_a ? next.a : 0, next.has_b ? next.b : 0};
        ctx.send(in.port, sim::make_message(kSpNext, std::move(payload),
                                            8 + 2 * ctx.label_bits()));
        start(ctx, self);
        break;
      }
      case kSpNext: {
        const std::uint64_t flags = in.msg.payload[0];
        const sim::Message wake = sim::make_message(kSpWake, {}, 8);
        if (flags & 1u) {
          ctx.send(static_cast<sim::Port>(in.msg.payload[1]), wake);
        }
        if (flags & 2u) {
          ctx.send(static_cast<sim::Port>(in.msg.payload[2]), wake);
        }
        break;
      }
      default:
        RISE_CHECK_MSG(false,
                       "spanner scheme: unexpected message " << in.msg.type);
    }
  }

  template <class Ctx>
  void on_round(Ctx& ctx, std::span<const sim::Incoming> inbox) {
    for (const sim::Incoming& in : inbox) on_message(ctx, in);
  }

 private:
  template <class Ctx>
  void start(Ctx& ctx, State& self) {
    if (self.started) return;
    self.started = true;
    if (self.advice.has_first) {
      ctx.send(self.advice.first, sim::make_message(kSpWake, {}, 8));
    }
  }

  States own_;
  States* states_ = nullptr;
};

}  // namespace

std::unique_ptr<AdvisingOracle> spanner_oracle(unsigned k) {
  RISE_CHECK(k >= 1);
  return std::make_unique<SpannerOracle>(k);
}

sim::ProcessFactory spanner_factory() {
  return [](sim::NodeId) { return std::make_unique<SpannerProcess>(); };
}

sim::KernelRunner spanner_kernel() {
  return sim::make_kernel(SpannerKernel{});
}

AdvisingScheme spanner_scheme(unsigned k) {
  return {spanner_oracle(k), spanner_factory(), spanner_kernel()};
}

AdvisingScheme corollary2_scheme() {
  return {std::make_unique<SpannerOracle>(0), spanner_factory(),
          spanner_kernel()};
}

}  // namespace rise::advice
