// Corollary 1 (after Fraigniaud, Ilcinkas, Pelc 2006): an advising scheme in
// the asynchronous KT0 CONGEST model with O(D) time, O(n) messages, O(n)
// maximum and O(log n) average advice length.
//
// The oracle computes a BFS tree (a BFS tree rather than an arbitrary
// spanning tree yields the O(D) time bound) and gives each node the set of
// its ports that carry tree edges. Appendix B's log-factor shave on the
// maximum advice is realized by encoding the port set as a degree-long
// bitmap whenever that is shorter than the port list.
//
// The algorithm floods over tree edges only: a node, once awake, sends a
// single wake-up message over each of its tree ports (minus the port it was
// woken through), so every tree edge carries at most two messages.
#pragma once

#include <memory>

#include "advice/advice.hpp"

namespace rise::advice {

inline constexpr std::uint32_t kTreeWake = 0x0AD1;

std::unique_ptr<AdvisingOracle> fip06_oracle(graph::NodeId root = 0);
sim::ProcessFactory fip06_factory();
sim::KernelRunner fip06_kernel();
AdvisingScheme fip06_scheme(graph::NodeId root = 0);

}  // namespace rise::advice
