#include "advice/child_encoding.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "support/check.hpp"

namespace rise::advice {

namespace {

void write_optional_port(BitWriter& w, bool present, sim::Port port) {
  w.write_bit(present);
  if (present) w.write_gamma(port);
}

class ChildEncodingOracle final : public AdvisingOracle {
 public:
  ChildEncodingOracle(graph::NodeId root, unsigned arity)
      : root_(root), arity_(arity) {}

  std::vector<BitString> advise(const sim::Instance& instance) const override {
    const auto& g = instance.graph();
    RISE_CHECK_MSG(graph::is_connected(g),
                   "tree advising schemes require a connected graph");
    const auto tree = graph::bfs_tree(g, root_);

    std::vector<CenAdvice> fields(g.num_nodes());

    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      if (tree.parent[u] != graph::kInvalidNode) {
        fields[u].has_parent = true;
        fields[u].parent = instance.neighbor_to_port(u, tree.parent[u]);
      }
      // Order u's children by their port number at u, then lay them out as a
      // 1-based binary heap: child i's "next siblings" are 2i and 2i+1.
      std::vector<std::pair<sim::Port, graph::NodeId>> kids;
      for (graph::NodeId c : tree.children[u]) {
        kids.push_back({instance.neighbor_to_port(u, c), c});
      }
      std::sort(kids.begin(), kids.end());
      if (!kids.empty()) {
        fields[u].has_first_child = true;
        fields[u].first_child = kids[0].first;
      }
      for (std::size_t i = 0; i < kids.size(); ++i) {
        const graph::NodeId c = kids[i].second;
        if (arity_ == 1) {
          // Ablation: linked list of siblings.
          if (i + 1 < kids.size()) {
            fields[c].has_next_a = true;
            fields[c].next_a = kids[i + 1].first;
          }
          continue;
        }
        const std::size_t heap = i + 1;
        if (2 * heap - 1 < kids.size()) {
          fields[c].has_next_a = true;
          fields[c].next_a = kids[2 * heap - 1].first;
        }
        if (2 * heap < kids.size()) {
          fields[c].has_next_b = true;
          fields[c].next_b = kids[2 * heap].first;
        }
      }
    }

    std::vector<BitString> advice(g.num_nodes());
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      BitWriter w;
      write_optional_port(w, fields[u].has_parent, fields[u].parent);
      write_optional_port(w, fields[u].has_first_child, fields[u].first_child);
      write_optional_port(w, fields[u].has_next_a, fields[u].next_a);
      write_optional_port(w, fields[u].has_next_b, fields[u].next_b);
      advice[u] = w.take();
    }
    return advice;
  }

 private:
  graph::NodeId root_;
  unsigned arity_;
};

class ChildEncodingProcess final : public sim::Process {
 public:
  void on_wake(sim::Context& ctx, sim::WakeCause cause) override {
    obs::NodeProbe probe = ctx.probe();
    probe.phase("advice.forward");
    probe.count("advice.decodes");
    advice_ = decode_cen_advice(ctx.advice());
    if (cause == sim::WakeCause::kAdversary) {
      notify_parent(ctx);
      start_children(ctx);
    }
  }

  void on_message(sim::Context& ctx, const sim::Incoming& in) override {
    switch (in.msg.type) {
      case kCenWakeChild: {
        // Our parent is clearly awake; answer with our next-sibling pair so
        // the parent can continue the binary dissemination.
        parent_notified_ = true;
        sim::PayloadWords payload;
        payload.push_back(
            (advice_.has_next_a ? 1u : 0u) | (advice_.has_next_b ? 2u : 0u));
        payload.push_back(advice_.has_next_a ? advice_.next_a : 0);
        payload.push_back(advice_.has_next_b ? advice_.next_b : 0);
        ctx.send(in.port, sim::make_message(kCenNext, std::move(payload),
                                            8 + 2 * ctx.label_bits()));
        start_children(ctx);
        break;
      }
      case kCenNext: {
        const std::uint64_t flags = in.msg.payload[0];
        const sim::Message wake = sim::make_message(kCenWakeChild, {}, 8);
        if (flags & 1u) {
          ctx.send(static_cast<sim::Port>(in.msg.payload[1]), wake);
        }
        if (flags & 2u) {
          ctx.send(static_cast<sim::Port>(in.msg.payload[2]), wake);
        }
        break;
      }
      case kCenWakeParent: {
        // A child woke independently; wake our own parent and the rest of
        // the family.
        notify_parent(ctx);
        start_children(ctx);
        break;
      }
      default:
        RISE_CHECK_MSG(false, "CEN: unexpected message type " << in.msg.type);
    }
  }

 private:
  void notify_parent(sim::Context& ctx) {
    if (parent_notified_ || !advice_.has_parent) return;
    parent_notified_ = true;
    ctx.send(advice_.parent, sim::make_message(kCenWakeParent, {}, 8));
  }

  void start_children(sim::Context& ctx) {
    if (started_ || !advice_.has_first_child) {
      started_ = true;
      return;
    }
    started_ = true;
    ctx.send(advice_.first_child, sim::make_message(kCenWakeChild, {}, 8));
  }

  CenAdvice advice_;
  bool parent_notified_ = false;
  bool started_ = false;
};

/// Kernel port of ChildEncodingProcess: decoded advice + two flags per node.
class ChildEncodingKernel {
 public:
  struct State {
    CenAdvice advice;
    bool parent_notified = false;
    bool started = false;
  };
  using States = std::vector<State>;

  void reset(const sim::Instance& instance, sim::RunWorkspace* workspace) {
    states_ = &sim::acquire_kernel_state(workspace, own_);
    states_->clear();
    states_->resize(instance.num_nodes());
  }

  template <class Ctx>
  void on_wake(Ctx& ctx, sim::WakeCause cause) {
    State& self = (*states_)[ctx.node()];
    obs::NodeProbe probe = ctx.probe();
    probe.phase("advice.forward");
    probe.count("advice.decodes");
    self.advice = decode_cen_advice(ctx.advice());
    if (cause == sim::WakeCause::kAdversary) {
      notify_parent(ctx, self);
      start_children(ctx, self);
    }
  }

  template <class Ctx>
  void on_message(Ctx& ctx, const sim::Incoming& in) {
    State& self = (*states_)[ctx.node()];
    switch (in.msg.type) {
      case kCenWakeChild: {
        // Our parent is clearly awake; answer with our next-sibling pair so
        // the parent can continue the binary dissemination.
        self.parent_notified = true;
        sim::PayloadWords payload;
        payload.push_back((self.advice.has_next_a ? 1u : 0u) |
                          (self.advice.has_next_b ? 2u : 0u));
        payload.push_back(self.advice.has_next_a ? self.advice.next_a : 0);
        payload.push_back(self.advice.has_next_b ? self.advice.next_b : 0);
        ctx.send(in.port, sim::make_message(kCenNext, std::move(payload),
                                            8 + 2 * ctx.label_bits()));
        start_children(ctx, self);
        break;
      }
      case kCenNext: {
        const std::uint64_t flags = in.msg.payload[0];
        const sim::Message wake = sim::make_message(kCenWakeChild, {}, 8);
        if (flags & 1u) {
          ctx.send(static_cast<sim::Port>(in.msg.payload[1]), wake);
        }
        if (flags & 2u) {
          ctx.send(static_cast<sim::Port>(in.msg.payload[2]), wake);
        }
        break;
      }
      case kCenWakeParent: {
        // A child woke independently; wake our own parent and the rest of
        // the family.
        notify_parent(ctx, self);
        start_children(ctx, self);
        break;
      }
      default:
        RISE_CHECK_MSG(false, "CEN: unexpected message type " << in.msg.type);
    }
  }

  template <class Ctx>
  void on_round(Ctx& ctx, std::span<const sim::Incoming> inbox) {
    for (const sim::Incoming& in : inbox) on_message(ctx, in);
  }

 private:
  template <class Ctx>
  void notify_parent(Ctx& ctx, State& self) {
    if (self.parent_notified || !self.advice.has_parent) return;
    self.parent_notified = true;
    ctx.send(self.advice.parent, sim::make_message(kCenWakeParent, {}, 8));
  }

  template <class Ctx>
  void start_children(Ctx& ctx, State& self) {
    if (self.started || !self.advice.has_first_child) {
      self.started = true;
      return;
    }
    self.started = true;
    ctx.send(self.advice.first_child,
             sim::make_message(kCenWakeChild, {}, 8));
  }

  States own_;
  States* states_ = nullptr;
};

}  // namespace

CenAdvice decode_cen_advice(const BitString& bits) {
  BitReader r(bits);
  CenAdvice a;
  auto read_optional = [&r](bool& flag, sim::Port& port) {
    flag = r.read_bit();
    if (flag) port = static_cast<sim::Port>(r.read_gamma());
  };
  read_optional(a.has_parent, a.parent);
  read_optional(a.has_first_child, a.first_child);
  read_optional(a.has_next_a, a.next_a);
  read_optional(a.has_next_b, a.next_b);
  return a;
}

std::unique_ptr<AdvisingOracle> child_encoding_oracle(graph::NodeId root,
                                                      unsigned arity) {
  RISE_CHECK(arity == 1 || arity == 2);
  return std::make_unique<ChildEncodingOracle>(root, arity);
}

sim::ProcessFactory child_encoding_factory() {
  return [](sim::NodeId) { return std::make_unique<ChildEncodingProcess>(); };
}

sim::KernelRunner child_encoding_kernel() {
  return sim::make_kernel(ChildEncodingKernel{});
}

AdvisingScheme child_encoding_scheme(graph::NodeId root) {
  return {child_encoding_oracle(root), child_encoding_factory(),
          child_encoding_kernel()};
}

}  // namespace rise::advice
