#include "advice/fip06.hpp"

#include <algorithm>

#include "advice/tree_advice_common.hpp"
#include "support/check.hpp"

namespace rise::advice {

std::vector<sim::Port> tree_ports(const sim::Instance& instance,
                                  const graph::BfsTree& tree,
                                  graph::NodeId u) {
  std::vector<sim::Port> ports;
  if (tree.parent[u] != graph::kInvalidNode) {
    ports.push_back(instance.neighbor_to_port(u, tree.parent[u]));
  }
  for (graph::NodeId c : tree.children[u]) {
    ports.push_back(instance.neighbor_to_port(u, c));
  }
  return ports;
}

void encode_port_set(BitWriter& w, const std::vector<sim::Port>& ports,
                     std::uint32_t degree) {
  const unsigned width = std::max(1u, bit_width_for(degree));
  // Cost of the list encoding: gamma(count) + count * width.
  BitWriter list;
  list.write_bit(false);
  list.write_gamma(ports.size());
  for (sim::Port p : ports) list.write_bits(p, width);
  if (list.size() <= 1 + degree) {
    const BitString& bits = list.bits();
    for (std::size_t i = 0; i < bits.size(); ++i) w.write_bit(bits.get(i));
    return;
  }
  w.write_bit(true);
  BitString bitmap(degree);
  for (sim::Port p : ports) bitmap.set(p, true);
  for (std::size_t i = 0; i < bitmap.size(); ++i) w.write_bit(bitmap.get(i));
}

std::vector<sim::Port> decode_port_set(BitReader& r, std::uint32_t degree) {
  std::vector<sim::Port> ports;
  if (!r.read_bit()) {
    const unsigned width = std::max(1u, bit_width_for(degree));
    const std::uint64_t count = r.read_gamma();
    ports.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      ports.push_back(static_cast<sim::Port>(r.read_bits(width)));
    }
  } else {
    for (std::uint32_t p = 0; p < degree; ++p) {
      if (r.read_bit()) ports.push_back(p);
    }
  }
  return ports;
}

namespace {

class Fip06Oracle final : public AdvisingOracle {
 public:
  explicit Fip06Oracle(graph::NodeId root) : root_(root) {}

  std::vector<BitString> advise(const sim::Instance& instance) const override {
    const auto& g = instance.graph();
    RISE_CHECK_MSG(graph::is_connected(g),
                   "tree advising schemes require a connected graph");
    const auto tree = graph::bfs_tree(g, root_);
    std::vector<BitString> advice(g.num_nodes());
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      BitWriter w;
      encode_port_set(w, tree_ports(instance, tree, u), g.degree(u));
      advice[u] = w.take();
    }
    return advice;
  }

 private:
  graph::NodeId root_;
};

class Fip06Process final : public sim::Process {
 public:
  void on_wake(sim::Context& ctx, sim::WakeCause cause) override {
    if (cause == sim::WakeCause::kAdversary) {
      propagate(ctx, sim::kInvalidPort);
    }
    // Message-woken nodes propagate from on_message, where the arrival port
    // is known.
  }

  void on_message(sim::Context& ctx, const sim::Incoming& in) override {
    propagate(ctx, in.port);
  }

 private:
  void propagate(sim::Context& ctx, sim::Port skip) {
    if (done_) return;
    done_ = true;
    obs::NodeProbe probe = ctx.probe();
    probe.phase("advice.forward");
    probe.count("advice.decodes");
    BitReader r(ctx.advice());
    for (sim::Port p : decode_port_set(r, ctx.degree())) {
      if (p == skip) continue;
      ctx.send(p, sim::make_message(kTreeWake, {}, 8));
    }
  }

  bool done_ = false;
};

/// Kernel port of Fip06Process: one done-flag per node.
class Fip06Kernel {
 public:
  struct State {
    bool done = false;
  };
  using States = std::vector<State>;

  void reset(const sim::Instance& instance, sim::RunWorkspace* workspace) {
    states_ = &sim::acquire_kernel_state(workspace, own_);
    states_->clear();
    states_->resize(instance.num_nodes());
  }

  template <class Ctx>
  void on_wake(Ctx& ctx, sim::WakeCause cause) {
    if (cause == sim::WakeCause::kAdversary) {
      propagate(ctx, sim::kInvalidPort);
    }
    // Message-woken nodes propagate from on_message, where the arrival port
    // is known.
  }

  template <class Ctx>
  void on_message(Ctx& ctx, const sim::Incoming& in) {
    propagate(ctx, in.port);
  }

  template <class Ctx>
  void on_round(Ctx& ctx, std::span<const sim::Incoming> inbox) {
    for (const sim::Incoming& in : inbox) on_message(ctx, in);
  }

 private:
  template <class Ctx>
  void propagate(Ctx& ctx, sim::Port skip) {
    State& self = (*states_)[ctx.node()];
    if (self.done) return;
    self.done = true;
    obs::NodeProbe probe = ctx.probe();
    probe.phase("advice.forward");
    probe.count("advice.decodes");
    BitReader r(ctx.advice());
    for (sim::Port p : decode_port_set(r, ctx.degree())) {
      if (p == skip) continue;
      ctx.send(p, sim::make_message(kTreeWake, {}, 8));
    }
  }

  States own_;
  States* states_ = nullptr;
};

}  // namespace

std::unique_ptr<AdvisingOracle> fip06_oracle(graph::NodeId root) {
  return std::make_unique<Fip06Oracle>(root);
}

sim::ProcessFactory fip06_factory() {
  return [](sim::NodeId) { return std::make_unique<Fip06Process>(); };
}

sim::KernelRunner fip06_kernel() { return sim::make_kernel(Fip06Kernel{}); }

AdvisingScheme fip06_scheme(graph::NodeId root) {
  return {fip06_oracle(root), fip06_factory(), fip06_kernel()};
}

}  // namespace rise::advice
