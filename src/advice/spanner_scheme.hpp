// Theorem 6 / Corollary 2: spanner-based advising schemes in the
// asynchronous KT0 CONGEST model.
//
// The oracle computes a greedy (2k-1)-spanner S (O(n^{1+1/k}) edges) and
// applies the child-encoding idea to each node's *incident spanner edges*:
// node v's spanner neighbors are arranged in a balanced binary heap, v's
// advice holds the port of the first one, and for every incident spanner
// edge (w, v) the advice of w holds w's next-sibling pair *in v's heap*
// (ports at v), keyed by the port at w that carries the edge. Advice length
// is therefore O(deg_S(w) log n) bits — O(n^{1/k} log^2 n) for the spanner
// degrees arising here — and each message carries at most two port numbers
// (CONGEST-safe).
//
// Wake-up floods over spanner edges with the binary sibling dissemination:
//   time    O(k * rho_awk * log n)   (stretch 2k-1 per hop, log-depth heaps)
//   messages O(k * n^{1+1/k})        (<= 2 per directed spanner edge)
// Corollary 2 instantiates k = ceil(log2 n): O(log^2 n) advice,
// O(n log^2 n) messages, O(rho_awk log^2 n) time.
#pragma once

#include <memory>

#include "advice/advice.hpp"

namespace rise::advice {

inline constexpr std::uint32_t kSpWake = 0x05A1;
inline constexpr std::uint32_t kSpNext = 0x05A2;

/// k >= 1: stretch parameter of the greedy (2k-1)-spanner.
std::unique_ptr<AdvisingOracle> spanner_oracle(unsigned k);

sim::ProcessFactory spanner_factory();

sim::KernelRunner spanner_kernel();

AdvisingScheme spanner_scheme(unsigned k);

/// Corollary 2: k = ceil(log2 n), chosen by the oracle from the instance.
AdvisingScheme corollary2_scheme();

}  // namespace rise::advice
