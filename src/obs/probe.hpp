// Probe: the opt-in run observer behind every profile (src/obs).
//
// A Probe is attached to a run through RunInstruments (or directly via
// AsyncEngine/SyncEngine::set_probe) and collects phase marks, node-class
// marks, named counters, per-send attribution, and event-loop statistics.
// Algorithms never touch the Probe directly — they go through the
// NodeProbe value handle returned by Context::probe(), which is null when
// no probe is attached and then compiles to a pointer test per call.
//
// The observation contract (same as TraceSink): a probe only *reads* the
// run. It draws no randomness, sends no messages, and never changes
// engine control flow, so a run with a probe attached is bit-identical to
// the same run without one. test_properties_engines pins this with a
// 50-scenario digest property.
//
// Attribution model:
//   * every node is in exactly one phase at a time (phase 0 =
//     "(unphased)" until the algorithm's first mark) and one class
//     (class 0 = "node");
//   * a send is charged to the *sender's* phase and class at send time,
//     so per-phase message/bit sums partition the Metrics totals exactly;
//   * re-marking the current phase is a no-op (marks count transitions).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/profile.hpp"
#include "sim/types.hpp"

namespace rise::sim {
struct RunResult;
}  // namespace rise::sim

namespace rise::obs {

/// One algorithm-facing probe mutation recorded during a parallel sync
/// chunk (SyncRunner::step_parallel) instead of applied immediately:
/// mark_phase / mark_class / add_counter all mutate shared intern tables,
/// and a send's phase attribution depends on the exact mark-vs-send
/// interleaving — so worker threads append DeferredMarks and the engine's
/// sequential reduction replays them in the sequential order. `seq` is the
/// number of sends the recording chunk had emitted when the mark happened:
/// the reduction applies every mark with seq <= s before accounting send s,
/// which reproduces the sequential interleaving exactly.
struct DeferredMark {
  enum class Kind : std::uint8_t { kPhase, kClass, kCounter };
  std::uint64_t seq = 0;
  Kind kind = Kind::kPhase;
  sim::NodeId node = 0;
  std::string name;
  std::uint64_t count = 0;  ///< kCounter only
};

/// Installs thread-local deferral for the calling thread: while a scope is
/// alive, Probe::mark_phase / mark_class / add_counter append to `marks`
/// (stamped with *seq at call time) instead of mutating the probe. The
/// engine-facing probe surface (on_send, on_sync_round, ...) is unaffected
/// — the engine only calls it from the coordinating thread.
class DeferredMarkScope {
 public:
  DeferredMarkScope(std::vector<DeferredMark>* marks,
                    const std::uint64_t* seq);
  ~DeferredMarkScope();

  DeferredMarkScope(const DeferredMarkScope&) = delete;
  DeferredMarkScope& operator=(const DeferredMarkScope&) = delete;
};

class Probe {
 public:
  Probe();

  // ---- engine-facing surface -------------------------------------------
  /// Sizes the per-node phase/class tables; the engines call this once
  /// before the run starts. Nodes begin in phase 0 / class 0.
  void attach_run(std::uint32_t num_nodes);

  /// "buckets" | "heap" | "sync" — which event loop ran.
  void set_backend(std::string_view backend) { engine_.backend = backend; }

  /// Hot path: one call per send, before enqueueing. `bits` is the logical
  /// message size, `t` the send time (tick or round).
  void on_send(sim::NodeId from, std::uint64_t bits, sim::Time t) {
    PhaseAccum& ph = phases_[node_phase_[from]];
    ++ph.messages;
    ph.bits += bits;
    if (t < ph.first_send) ph.first_send = t;
    if (t > ph.last_send) ph.last_send = t;
    ph.message_bits.add(bits);
    ++class_messages_[node_class_[from]];
  }

  /// Asynchronous engine: called at every event pop with the queue size
  /// *after* the pop.
  void on_event_pop(std::size_t queue_size) {
    ++engine_.events_popped;
    engine_.queue_depth.add(queue_size);
  }

  /// Asynchronous engine: called after every push with the total queue
  /// size and the calendar-ring vs overflow-heap split.
  void on_queue_push(std::size_t size, std::size_t ring, std::size_t overflow) {
    if (size > engine_.queue_high_water) engine_.queue_high_water = size;
    if (ring > engine_.ring_high_water) engine_.ring_high_water = ring;
    if (overflow > engine_.overflow_high_water)
      engine_.overflow_high_water = overflow;
  }

  /// Synchronous engine: called once per stepped round with the number of
  /// active (stepped) nodes.
  void on_sync_round(std::size_t active) {
    ++engine_.rounds_stepped;
    engine_.round_active.add(active);
  }

  // ---- algorithm-facing surface (via NodeProbe) ------------------------
  /// Moves `node` into the named phase; no-op if already there. Phases are
  /// interned on first use, so marking is map-lookup cost — call it at
  /// phase *transitions*, not per message.
  void mark_phase(sim::NodeId node, std::string_view name);

  /// Assigns `node` to the named class ("root", "l1", ...).
  void mark_class(sim::NodeId node, std::string_view name);

  /// Bumps a named monotonic counter.
  void add_counter(std::string_view name, std::uint64_t n = 1);

  /// Applies one recorded mark (see DeferredMark); called by the sync
  /// engine's parallel reduction, on the coordinating thread, in sequential
  /// order.
  void replay(const DeferredMark& mark);

  /// Accumulates a completed PhaseTimer span under `name`.
  void add_timer(std::string_view name, double wall_seconds,
                 std::uint64_t sim_ticks);

  // ---- inspection / extraction -----------------------------------------
  std::uint64_t counter(std::string_view name) const;  ///< 0 when absent

  /// Builds the RunProfile from everything collected plus the run's
  /// Metrics totals. Per-class node counts and sent-per-node histograms
  /// use each node's class at the *end* of the run. Experiment identity
  /// fields (algorithm, graph, seed, ...) are left for the caller.
  RunProfile take_profile(const sim::RunResult& result) const;

 private:
  // PhaseProfile minus the name-independent finishing touches; kept flat
  // so on_send touches one cache line per phase.
  struct PhaseAccum {
    std::string name;
    std::uint64_t marks = 0;
    std::uint64_t messages = 0;
    std::uint64_t bits = 0;
    sim::Time first_send = sim::kNever;
    sim::Time last_send = 0;
    LogHistogram message_bits;
  };

  std::uint32_t intern_phase(std::string_view name);
  std::uint32_t intern_class(std::string_view name);

  std::vector<PhaseAccum> phases_;                // index = phase id
  std::vector<std::string> class_names_;          // index = class id
  std::vector<std::uint64_t> class_messages_;     // index = class id
  std::map<std::string, std::uint32_t, std::less<>> phase_ids_;
  std::map<std::string, std::uint32_t, std::less<>> class_ids_;
  std::vector<std::uint32_t> node_phase_;         // index = node
  std::vector<std::uint32_t> node_class_;         // index = node
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::vector<TimerProfile> timers_;              // creation order
  std::map<std::string, std::size_t, std::less<>> timer_ids_;
  EngineProfile engine_;
};

/// The per-node view algorithms get from Context::probe(). A plain
/// (pointer, node) pair: when no probe is attached every call is a single
/// branch on nullptr, which is the disabled-case overhead contract
/// bench_engine_micro holds to <= 2%.
class NodeProbe {
 public:
  NodeProbe() = default;
  NodeProbe(Probe* probe, sim::NodeId node) : probe_(probe), node_(node) {}

  /// True when a probe is attached — lets algorithms skip building
  /// expensive diagnostic values entirely.
  bool enabled() const { return probe_ != nullptr; }

  void phase(std::string_view name) {
    if (probe_) probe_->mark_phase(node_, name);
  }
  void node_class(std::string_view name) {
    if (probe_) probe_->mark_class(node_, name);
  }
  void count(std::string_view name, std::uint64_t n = 1) {
    if (probe_) probe_->add_counter(name, n);
  }

 private:
  Probe* probe_ = nullptr;
  sim::NodeId node_ = sim::kInvalidNode;
};

/// RAII wall-clock span. With a null probe the constructor and destructor
/// do nothing (the clock is not even read). Repeated spans under one name
/// accumulate: calls, total wall seconds, total sim ticks.
class PhaseTimer {
 public:
  PhaseTimer(Probe* probe, std::string_view name);
  ~PhaseTimer();

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  /// Optional simulated-time span to record alongside the wall clock.
  void set_sim_span(std::uint64_t ticks) { sim_ticks_ = ticks; }

 private:
  Probe* probe_;
  std::string name_;
  std::chrono::steady_clock::time_point start_{};
  std::uint64_t sim_ticks_ = 0;
};

}  // namespace rise::obs
