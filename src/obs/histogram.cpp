#include "obs/histogram.hpp"

namespace rise::obs {

std::uint64_t LogHistogram::approx_quantile(double p) const {
  if (count_ == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(p * count), rank 1 for p == 0 like SampleStats::quantile.
  std::uint64_t rank =
      static_cast<std::uint64_t>(p * static_cast<double>(count_) + 0.9999999);
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t cumulative = 0;
  for (unsigned b = 0; b < kBuckets; ++b) {
    cumulative += counts_[b];
    if (cumulative >= rank) return bucket_lo(b);
  }
  return bucket_lo(kBuckets - 1);
}

bool operator==(const LogHistogram& a, const LogHistogram& b) {
  if (a.count_ != b.count_ || a.sum_ != b.sum_) return false;
  if (a.count() > 0 && (a.min() != b.min() || a.max() != b.max())) return false;
  for (unsigned i = 0; i < LogHistogram::kBuckets; ++i) {
    if (a.counts_[i] != b.counts_[i]) return false;
  }
  return true;
}

}  // namespace rise::obs
