#include "obs/probe.hpp"

#include "sim/metrics.hpp"

namespace rise::obs {

namespace {

/// Thread-local deferral target (see DeferredMarkScope). Plain pointers:
/// the engine guarantees the scope outlives every probe call it defers.
struct DeferTarget {
  std::vector<DeferredMark>* marks = nullptr;
  const std::uint64_t* seq = nullptr;
};

thread_local DeferTarget tl_defer;

bool defer(DeferredMark::Kind kind, sim::NodeId node, std::string_view name,
           std::uint64_t count) {
  if (tl_defer.marks == nullptr) return false;
  DeferredMark mark;
  mark.seq = *tl_defer.seq;
  mark.kind = kind;
  mark.node = node;
  mark.name = name;
  mark.count = count;
  tl_defer.marks->push_back(std::move(mark));
  return true;
}

}  // namespace

DeferredMarkScope::DeferredMarkScope(std::vector<DeferredMark>* marks,
                                     const std::uint64_t* seq) {
  tl_defer.marks = marks;
  tl_defer.seq = seq;
}

DeferredMarkScope::~DeferredMarkScope() { tl_defer = DeferTarget{}; }

Probe::Probe() {
  PhaseAccum unphased;
  unphased.name = "(unphased)";
  phases_.push_back(std::move(unphased));
  phase_ids_.emplace("(unphased)", 0);
  class_names_.push_back("node");
  class_messages_.push_back(0);
  class_ids_.emplace("node", 0);
}

void Probe::attach_run(std::uint32_t num_nodes) {
  node_phase_.assign(num_nodes, 0);
  node_class_.assign(num_nodes, 0);
}

std::uint32_t Probe::intern_phase(std::string_view name) {
  auto it = phase_ids_.find(name);
  if (it != phase_ids_.end()) return it->second;
  auto id = static_cast<std::uint32_t>(phases_.size());
  PhaseAccum accum;
  accum.name = name;
  phases_.push_back(std::move(accum));
  phase_ids_.emplace(std::string(name), id);
  return id;
}

std::uint32_t Probe::intern_class(std::string_view name) {
  auto it = class_ids_.find(name);
  if (it != class_ids_.end()) return it->second;
  auto id = static_cast<std::uint32_t>(class_names_.size());
  class_names_.push_back(std::string(name));
  class_messages_.push_back(0);
  class_ids_.emplace(std::string(name), id);
  return id;
}

void Probe::mark_phase(sim::NodeId node, std::string_view name) {
  if (defer(DeferredMark::Kind::kPhase, node, name, 0)) return;
  std::uint32_t id = intern_phase(name);
  if (node_phase_[node] == id) return;
  node_phase_[node] = id;
  ++phases_[id].marks;
}

void Probe::mark_class(sim::NodeId node, std::string_view name) {
  if (defer(DeferredMark::Kind::kClass, node, name, 0)) return;
  node_class_[node] = intern_class(name);
}

void Probe::add_counter(std::string_view name, std::uint64_t n) {
  if (defer(DeferredMark::Kind::kCounter, 0, name, n)) return;
  auto it = counters_.find(name);
  if (it != counters_.end()) {
    it->second += n;
  } else {
    counters_.emplace(std::string(name), n);
  }
}

void Probe::add_timer(std::string_view name, double wall_seconds,
                      std::uint64_t sim_ticks) {
  auto it = timer_ids_.find(name);
  std::size_t idx;
  if (it != timer_ids_.end()) {
    idx = it->second;
  } else {
    idx = timers_.size();
    TimerProfile timer;
    timer.name = name;
    timers_.push_back(std::move(timer));
    timer_ids_.emplace(std::string(name), idx);
  }
  TimerProfile& t = timers_[idx];
  ++t.calls;
  t.wall_seconds += wall_seconds;
  t.sim_ticks += sim_ticks;
}

void Probe::replay(const DeferredMark& mark) {
  switch (mark.kind) {
    case DeferredMark::Kind::kPhase:
      mark_phase(mark.node, mark.name);
      break;
    case DeferredMark::Kind::kClass:
      mark_class(mark.node, mark.name);
      break;
    case DeferredMark::Kind::kCounter:
      add_counter(mark.name, mark.count);
      break;
  }
}

std::uint64_t Probe::counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

RunProfile Probe::take_profile(const sim::RunResult& result) const {
  RunProfile p;
  const sim::Metrics& m = result.metrics;
  p.messages = m.messages;
  p.bits = m.bits;
  p.deliveries = m.deliveries;
  p.events = m.events;
  p.rounds = m.rounds;
  p.time_units = m.time_units();

  p.sleep_dropped = m.sleep_dropped;
  for (std::uint32_t a : result.awake_rounds) {
    p.awake_total += a;
    if (a > p.awake_max) p.awake_max = a;
    p.awake_rounds.add(a);
  }

  p.phases.reserve(phases_.size());
  for (const PhaseAccum& a : phases_) {
    PhaseProfile ph;
    ph.name = a.name;
    ph.marks = a.marks;
    ph.messages = a.messages;
    ph.bits = a.bits;
    ph.first_send = a.first_send;
    ph.last_send = a.last_send;
    ph.message_bits = a.message_bits;
    p.phases.push_back(std::move(ph));
  }

  p.classes.resize(class_names_.size());
  for (std::size_t c = 0; c < class_names_.size(); ++c) {
    p.classes[c].name = class_names_[c];
    p.classes[c].messages = class_messages_[c];
  }
  // Node membership and per-node send distributions use each node's class
  // at the end of the run (classes rarely change once assigned).
  for (std::size_t u = 0; u < node_class_.size(); ++u) {
    ClassProfile& cp = p.classes[node_class_[u]];
    ++cp.nodes;
    if (u < m.sent_per_node.size()) {
      cp.sent_per_node.add(m.sent_per_node[u]);
    }
  }

  p.counters.assign(counters_.begin(), counters_.end());
  p.engine = engine_;
  p.timers = timers_;
  return p;
}

PhaseTimer::PhaseTimer(Probe* probe, std::string_view name) : probe_(probe) {
  if (!probe_) return;
  name_ = name;
  start_ = std::chrono::steady_clock::now();
}

PhaseTimer::~PhaseTimer() {
  if (!probe_) return;
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start_;
  probe_->add_timer(name_, elapsed.count(), sim_ticks_);
}

}  // namespace rise::obs
