// RunProfile: the structured output of an observed run (src/obs).
//
// A profile decomposes the end-of-run Metrics totals along the axes the
// paper reasons about: *which algorithm phase* spent the messages/bits
// (probing vs flooding vs advice decoding), *which node class* sent them,
// where the event loop spent its budget (events popped, queue depth,
// bucket-vs-heap occupancy), and how long each host-side stage took in
// wall-clock. The invariant that makes profiles trustworthy enough to gate
// tests on: per-phase message/bit counts partition the Metrics totals
// exactly — every send is attributed to exactly one phase (phase 0,
// "(unphased)", catches activity before the first mark), so
// sum(phases[i].messages) == metrics.messages always.
//
// Profiles serialize through the repo's deterministic JSON writer
// (src/support/json) and merge across trials into a ProfileAggregate whose
// cross-trial quantiles come from SampleStats — the repo's single quantile
// implementation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"
#include "sim/types.hpp"
#include "support/stats.hpp"

namespace rise::json {
class Writer;
struct Value;
}  // namespace rise::json

namespace rise::obs {

/// One algorithm phase's share of the run. Sends are attributed to the
/// *sender's* current phase at send time.
struct PhaseProfile {
  std::string name;
  std::uint64_t marks = 0;     ///< nodes that entered this phase (transitions)
  std::uint64_t messages = 0;  ///< sends attributed to this phase
  std::uint64_t bits = 0;      ///< logical bits of those sends
  sim::Time first_send = sim::kNever;  ///< simulated-time span of the phase's
  sim::Time last_send = 0;             ///< sends; kNever/0 when no sends
  LogHistogram message_bits;   ///< per-send logical size distribution
};

/// One node class's share (classes are algorithm-assigned roles: "root",
/// "l1", ...; class 0 "node" is the default).
struct ClassProfile {
  std::string name;
  std::uint64_t nodes = 0;     ///< nodes in this class at the end of the run
  std::uint64_t messages = 0;  ///< sends by nodes of this class
  LogHistogram sent_per_node;  ///< distribution of per-node send counts
};

/// Event-loop profile. For the asynchronous engine: pops, queue depth, and
/// calendar-ring vs overflow-heap occupancy. For the synchronous engine:
/// rounds stepped and active-set sizes.
struct EngineProfile {
  std::string backend;  ///< "buckets" | "heap" | "sync" | "" (not run)
  std::uint64_t events_popped = 0;
  std::uint64_t queue_high_water = 0;  ///< max queue size seen after a push
  std::uint64_t ring_high_water = 0;   ///< calendar ring occupancy (buckets)
  std::uint64_t overflow_high_water = 0;  ///< overflow-heap occupancy
  LogHistogram queue_depth;  ///< queue size sampled at every pop
  std::uint64_t rounds_stepped = 0;    ///< sync: rounds that stepped a node
  LogHistogram round_active;           ///< sync: active nodes per round
};

/// A host-side wall-clock span recorded by an obs::PhaseTimer.
struct TimerProfile {
  std::string name;
  std::uint64_t calls = 0;
  double wall_seconds = 0.0;
  std::uint64_t sim_ticks = 0;  ///< optional simulated-time span
};

struct RunProfile {
  // Experiment identity (filled by app::run_profiled).
  std::string algorithm;
  std::string graph;
  std::string schedule;
  std::string delay;
  std::uint64_t seed = 0;
  std::uint32_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  /// Awake distance rho_awk(G, A0) of the run's wake schedule (Eq. 1) — the
  /// quantity the paper's time bounds are stated against, and the search
  /// driver's third objective (src/search).
  std::uint32_t rho_awk = 0;
  bool synchronous = false;

  // Totals mirrored from sim::Metrics — the numbers the phases partition.
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t events = 0;
  std::uint64_t rounds = 0;
  double time_units = 0.0;

  // Sleeping-model awake accounting (sim::RunResult::awake_rounds). All-zero
  // for families that never declare sleep — awake accounting is maintained
  // for every run, so these stay meaningful (awake_max == rounds a node was
  // stepped) even outside the sleeping model.
  std::uint64_t awake_total = 0;  ///< sum over nodes of per-node awake rounds
  std::uint64_t awake_max = 0;    ///< max per-node awake rounds — the run's
                                  ///< measured awake complexity
  std::uint64_t sleep_dropped = 0;  ///< messages dropped at sleeping nodes
  LogHistogram awake_rounds;  ///< per-node awake-round distribution (all nodes)

  std::vector<PhaseProfile> phases;    ///< phase-id order; [0] = "(unphased)"
  std::vector<ClassProfile> classes;   ///< class-id order; [0] = "node"
  std::vector<std::pair<std::string, std::uint64_t>> counters;  ///< name-sorted
  EngineProfile engine;
  std::vector<TimerProfile> timers;    ///< creation order

  /// Sum of messages over phases — equals `messages` by construction; the
  /// conformance suite asserts it anyway.
  std::uint64_t phase_message_sum() const;
  std::uint64_t phase_bit_sum() const;

  const PhaseProfile* find_phase(const std::string& name) const;
  std::uint64_t counter(const std::string& name) const;  ///< 0 when absent
};

/// Streams the profile as one JSON object ({"kind": "run_profile", ...}).
void write_profile(json::Writer& w, const RunProfile& p);
std::string profile_to_json(const RunProfile& p);

/// Inverse of write_profile: rebuilds a RunProfile from its parsed JSON
/// document (CheckError unless `doc` is a run_profile object). Exact —
/// integers round-trip through the u64-preserving reader and doubles through
/// the shortest-round-trip writer — so merging parsed profiles in trial-index
/// order reproduces the in-process ProfileAggregate bit for bit; the shard
/// orchestrator's merge path (runner/shard.cpp) relies on exactly this.
RunProfile profile_from_json(const json::Value& doc);

/// Deterministic merge of per-trial profiles (merge order = trial-index
/// order in the campaign runner). Sums are exact; cross-trial distributions
/// (messages, time units, per-phase messages) are SampleStats, so the
/// aggregate reports exact quantiles over trials.
struct PhaseAggregate {
  std::string name;
  std::uint64_t marks = 0;
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  LogHistogram message_bits;
  SampleStats messages_per_trial;
};

struct ProfileAggregate {
  std::size_t trials = 0;
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  std::uint64_t events = 0;
  std::uint64_t awake_total = 0;    ///< summed across trials
  std::uint64_t awake_max = 0;      ///< max across trials
  std::uint64_t sleep_dropped = 0;  ///< summed across trials
  LogHistogram awake_rounds;        ///< merged per-node distributions
  SampleStats messages_per_trial;
  SampleStats time_units;
  SampleStats awake_max_per_trial;  ///< per-trial awake complexity
  std::vector<PhaseAggregate> phases;  ///< name-sorted
  std::vector<std::pair<std::string, std::uint64_t>> counters;  ///< name-sorted
  EngineProfile engine;  ///< sums / maxima / merged histograms across trials

  void merge(const RunProfile& p);
};

/// Streams the aggregate ({"kind": "profile_aggregate", ...}); phase records
/// carry p50/p90/max message quantiles across trials.
void write_aggregate(json::Writer& w, const ProfileAggregate& a);
std::string aggregate_to_json(const ProfileAggregate& a);

/// Human-readable top-N phase breakdown of an in-memory profile.
std::string format_profile(const RunProfile& p, std::size_t top_n = 8);
std::string format_aggregate(const ProfileAggregate& a, std::size_t top_n = 8);

/// Pretty-prints a parsed profile document — either kind ("run_profile" or
/// "profile_aggregate"); used by `rise_cli profile FILE`. Throws CheckError
/// on documents that are neither.
std::string format_profile_document(const json::Value& doc,
                                    std::size_t top_n = 8);

}  // namespace rise::obs
