#include "obs/profile.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/check.hpp"
#include "support/json.hpp"

namespace rise::obs {

namespace {

void write_histogram(json::Writer& w, const LogHistogram& h) {
  w.begin_object();
  w.kv("count", h.count());
  w.kv("sum", h.sum());
  w.kv("min", h.min());
  w.kv("max", h.max());
  // Sparse: only occupied buckets, as [bucket_lo, count] pairs.
  w.key("buckets").begin_array();
  for (unsigned b = 0; b < LogHistogram::kBuckets; ++b) {
    if (h.bucket_count(b) == 0) continue;
    w.begin_array()
        .value(LogHistogram::bucket_lo(b))
        .value(h.bucket_count(b))
        .end_array();
  }
  w.end_array();
  w.end_object();
}

void write_stats(json::Writer& w, const SampleStats& s) {
  w.begin_object();
  w.kv("count", static_cast<std::uint64_t>(s.count()));
  if (s.count() > 0) {
    w.kv("mean", s.mean());
    w.kv("stddev", s.stddev());
    w.kv("min", s.min());
    w.kv("p50", s.quantile(0.5));
    w.kv("p90", s.quantile(0.9));
    w.kv("max", s.max());
  }
  w.end_object();
}

void write_engine(json::Writer& w, const EngineProfile& e) {
  w.begin_object();
  w.kv("backend", e.backend);
  w.kv("events_popped", e.events_popped);
  w.kv("queue_high_water", e.queue_high_water);
  w.kv("ring_high_water", e.ring_high_water);
  w.kv("overflow_high_water", e.overflow_high_water);
  w.key("queue_depth");
  write_histogram(w, e.queue_depth);
  w.kv("rounds_stepped", e.rounds_stepped);
  w.key("round_active");
  write_histogram(w, e.round_active);
  w.end_object();
}

void write_counters(
    json::Writer& w,
    const std::vector<std::pair<std::string, std::uint64_t>>& counters) {
  w.begin_object();
  for (const auto& [name, v] : counters) w.kv(name, v);
  w.end_object();
}

// ---- helpers for the generic (parsed-JSON) pretty-printer ---------------

std::uint64_t get_u64(const json::Value& v, std::string_view key) {
  const json::Value* f = v.find(key);
  return (f != nullptr && f->is_integer) ? f->u64 : 0;
}

double get_num(const json::Value& v, std::string_view key) {
  const json::Value* f = v.find(key);
  return (f != nullptr && f->type == json::Value::Type::kNumber) ? f->number
                                                                 : 0.0;
}

std::string get_str(const json::Value& v, std::string_view key) {
  const json::Value* f = v.find(key);
  return (f != nullptr && f->type == json::Value::Type::kString) ? f->string
                                                                 : std::string();
}

std::string fmt_double(double v, int precision = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void append_row(std::ostringstream& os, const std::string& name,
                const std::string& rest) {
  os << "  " << std::left << std::setw(18) << name << ' ' << rest << '\n';
}

}  // namespace

std::uint64_t RunProfile::phase_message_sum() const {
  std::uint64_t sum = 0;
  for (const PhaseProfile& ph : phases) sum += ph.messages;
  return sum;
}

std::uint64_t RunProfile::phase_bit_sum() const {
  std::uint64_t sum = 0;
  for (const PhaseProfile& ph : phases) sum += ph.bits;
  return sum;
}

const PhaseProfile* RunProfile::find_phase(const std::string& name) const {
  for (const PhaseProfile& ph : phases) {
    if (ph.name == name) return &ph;
  }
  return nullptr;
}

std::uint64_t RunProfile::counter(const std::string& name) const {
  for (const auto& [k, v] : counters) {
    if (k == name) return v;
  }
  return 0;
}

void write_profile(json::Writer& w, const RunProfile& p) {
  w.begin_object();
  w.kv("kind", "run_profile");
  w.kv("algorithm", p.algorithm);
  w.kv("graph", p.graph);
  w.kv("schedule", p.schedule);
  w.kv("delay", p.delay);
  w.kv("seed", p.seed);
  w.kv("num_nodes", p.num_nodes);
  w.kv("num_edges", p.num_edges);
  w.kv("rho_awk", p.rho_awk);
  w.kv("synchronous", p.synchronous);

  w.key("totals").begin_object();
  w.kv("messages", p.messages);
  w.kv("bits", p.bits);
  w.kv("deliveries", p.deliveries);
  w.kv("events", p.events);
  w.kv("rounds", p.rounds);
  w.kv("time_units", p.time_units);
  w.kv("awake_total", p.awake_total);
  w.kv("awake_max", p.awake_max);
  w.kv("sleep_dropped", p.sleep_dropped);
  w.end_object();

  w.key("awake_rounds");
  write_histogram(w, p.awake_rounds);

  w.key("phases").begin_array();
  for (const PhaseProfile& ph : p.phases) {
    w.begin_object();
    w.kv("name", ph.name);
    w.kv("marks", ph.marks);
    w.kv("messages", ph.messages);
    w.kv("bits", ph.bits);
    if (ph.messages > 0) {
      w.kv("first_send", ph.first_send);
      w.kv("last_send", ph.last_send);
    } else {
      w.key("first_send").null();
      w.key("last_send").null();
    }
    w.key("message_bits");
    write_histogram(w, ph.message_bits);
    w.end_object();
  }
  w.end_array();

  w.key("classes").begin_array();
  for (const ClassProfile& c : p.classes) {
    w.begin_object();
    w.kv("name", c.name);
    w.kv("nodes", c.nodes);
    w.kv("messages", c.messages);
    w.key("sent_per_node");
    write_histogram(w, c.sent_per_node);
    w.end_object();
  }
  w.end_array();

  w.key("counters");
  write_counters(w, p.counters);

  w.key("engine");
  write_engine(w, p.engine);

  w.key("timers").begin_array();
  for (const TimerProfile& t : p.timers) {
    w.begin_object();
    w.kv("name", t.name);
    w.kv("calls", t.calls);
    w.kv("wall_seconds", t.wall_seconds);
    w.kv("sim_ticks", t.sim_ticks);
    w.end_object();
  }
  w.end_array();

  w.end_object();
}

std::string profile_to_json(const RunProfile& p) {
  std::ostringstream os;
  json::Writer w(os);
  write_profile(w, p);
  RISE_CHECK(w.complete());
  os << '\n';
  return os.str();
}

namespace {

// ---- helpers for profile_from_json (inverse of the writers above) -------

LogHistogram read_histogram(const json::Value& v) {
  RISE_CHECK_MSG(v.is_object(), "histogram is not a JSON object");
  std::uint64_t counts[LogHistogram::kBuckets] = {};
  const json::Value* buckets = v.find("buckets");
  if (buckets != nullptr && buckets->is_array()) {
    for (const json::Value& pair : buckets->array) {
      RISE_CHECK_MSG(pair.is_array() && pair.size() == 2,
                     "histogram bucket is not a [lo, count] pair");
      // The serialized lo is bucket_lo(b), and bucket_of(bucket_lo(b)) == b
      // for every b, so the bucket index round-trips through its lo value.
      const unsigned b = LogHistogram::bucket_of(pair.at(0).u64);
      counts[b] = pair.at(1).u64;
    }
  }
  return LogHistogram::restore(counts, get_u64(v, "count"), get_u64(v, "sum"),
                               get_u64(v, "min"), get_u64(v, "max"));
}

EngineProfile read_engine(const json::Value& v) {
  EngineProfile e;
  e.backend = get_str(v, "backend");
  e.events_popped = get_u64(v, "events_popped");
  e.queue_high_water = get_u64(v, "queue_high_water");
  e.ring_high_water = get_u64(v, "ring_high_water");
  e.overflow_high_water = get_u64(v, "overflow_high_water");
  if (const json::Value* h = v.find("queue_depth")) {
    e.queue_depth = read_histogram(*h);
  }
  e.rounds_stepped = get_u64(v, "rounds_stepped");
  if (const json::Value* h = v.find("round_active")) {
    e.round_active = read_histogram(*h);
  }
  return e;
}

}  // namespace

RunProfile profile_from_json(const json::Value& doc) {
  RISE_CHECK_MSG(doc.is_object() && get_str(doc, "kind") == "run_profile",
                 "not a run_profile document");
  RunProfile p;
  p.algorithm = get_str(doc, "algorithm");
  p.graph = get_str(doc, "graph");
  p.schedule = get_str(doc, "schedule");
  p.delay = get_str(doc, "delay");
  p.seed = get_u64(doc, "seed");
  p.num_nodes = static_cast<std::uint32_t>(get_u64(doc, "num_nodes"));
  p.num_edges = get_u64(doc, "num_edges");
  p.rho_awk = static_cast<std::uint32_t>(get_u64(doc, "rho_awk"));
  if (const json::Value* f = doc.find("synchronous")) p.synchronous = f->boolean;

  const json::Value& totals = doc.at("totals");
  p.messages = get_u64(totals, "messages");
  p.bits = get_u64(totals, "bits");
  p.deliveries = get_u64(totals, "deliveries");
  p.events = get_u64(totals, "events");
  p.rounds = get_u64(totals, "rounds");
  p.time_units = get_num(totals, "time_units");
  p.awake_total = get_u64(totals, "awake_total");
  p.awake_max = get_u64(totals, "awake_max");
  p.sleep_dropped = get_u64(totals, "sleep_dropped");

  if (const json::Value* h = doc.find("awake_rounds")) {
    p.awake_rounds = read_histogram(*h);
  }

  if (const json::Value* phases = doc.find("phases")) {
    for (const json::Value& v : phases->array) {
      PhaseProfile ph;
      ph.name = get_str(v, "name");
      ph.marks = get_u64(v, "marks");
      ph.messages = get_u64(v, "messages");
      ph.bits = get_u64(v, "bits");
      const json::Value* first = v.find("first_send");
      if (first != nullptr && !first->is_null()) {
        ph.first_send = first->u64;
        ph.last_send = get_u64(v, "last_send");
      }
      ph.message_bits = read_histogram(v.at("message_bits"));
      p.phases.push_back(std::move(ph));
    }
  }

  if (const json::Value* classes = doc.find("classes")) {
    for (const json::Value& v : classes->array) {
      ClassProfile c;
      c.name = get_str(v, "name");
      c.nodes = get_u64(v, "nodes");
      c.messages = get_u64(v, "messages");
      c.sent_per_node = read_histogram(v.at("sent_per_node"));
      p.classes.push_back(std::move(c));
    }
  }

  if (const json::Value* counters = doc.find("counters")) {
    for (const auto& [name, v] : counters->object) {
      p.counters.emplace_back(name, v.u64);
    }
  }

  if (const json::Value* engine = doc.find("engine")) {
    p.engine = read_engine(*engine);
  }

  if (const json::Value* timers = doc.find("timers")) {
    for (const json::Value& v : timers->array) {
      TimerProfile t;
      t.name = get_str(v, "name");
      t.calls = get_u64(v, "calls");
      t.wall_seconds = get_num(v, "wall_seconds");
      t.sim_ticks = get_u64(v, "sim_ticks");
      p.timers.push_back(std::move(t));
    }
  }
  return p;
}

void ProfileAggregate::merge(const RunProfile& p) {
  ++trials;
  messages += p.messages;
  bits += p.bits;
  events += p.events;
  awake_total += p.awake_total;
  awake_max = std::max(awake_max, p.awake_max);
  sleep_dropped += p.sleep_dropped;
  awake_rounds.merge(p.awake_rounds);
  messages_per_trial.add(static_cast<double>(p.messages));
  time_units.add(p.time_units);
  awake_max_per_trial.add(static_cast<double>(p.awake_max));

  for (const PhaseProfile& ph : p.phases) {
    auto it = std::lower_bound(
        phases.begin(), phases.end(), ph.name,
        [](const PhaseAggregate& a, const std::string& n) { return a.name < n; });
    if (it == phases.end() || it->name != ph.name) {
      PhaseAggregate fresh;
      fresh.name = ph.name;
      it = phases.insert(it, std::move(fresh));
    }
    it->marks += ph.marks;
    it->messages += ph.messages;
    it->bits += ph.bits;
    it->message_bits.merge(ph.message_bits);
    it->messages_per_trial.add(static_cast<double>(ph.messages));
  }

  for (const auto& [name, v] : p.counters) {
    auto it = std::lower_bound(
        counters.begin(), counters.end(), name,
        [](const std::pair<std::string, std::uint64_t>& a,
           const std::string& n) { return a.first < n; });
    if (it == counters.end() || it->first != name) {
      counters.insert(it, {name, v});
    } else {
      it->second += v;
    }
  }

  if (engine.backend.empty()) {
    engine.backend = p.engine.backend;
  } else if (!p.engine.backend.empty() &&
             engine.backend != p.engine.backend) {
    engine.backend = "mixed";
  }
  engine.events_popped += p.engine.events_popped;
  engine.queue_high_water =
      std::max(engine.queue_high_water, p.engine.queue_high_water);
  engine.ring_high_water =
      std::max(engine.ring_high_water, p.engine.ring_high_water);
  engine.overflow_high_water =
      std::max(engine.overflow_high_water, p.engine.overflow_high_water);
  engine.queue_depth.merge(p.engine.queue_depth);
  engine.rounds_stepped += p.engine.rounds_stepped;
  engine.round_active.merge(p.engine.round_active);
}

void write_aggregate(json::Writer& w, const ProfileAggregate& a) {
  w.begin_object();
  w.kv("kind", "profile_aggregate");
  w.kv("trials", static_cast<std::uint64_t>(a.trials));

  w.key("totals").begin_object();
  w.kv("messages", a.messages);
  w.kv("bits", a.bits);
  w.kv("events", a.events);
  w.kv("awake_total", a.awake_total);
  w.kv("awake_max", a.awake_max);
  w.kv("sleep_dropped", a.sleep_dropped);
  w.end_object();

  w.key("awake_rounds");
  write_histogram(w, a.awake_rounds);

  w.key("messages_per_trial");
  write_stats(w, a.messages_per_trial);
  w.key("time_units");
  write_stats(w, a.time_units);
  w.key("awake_max_per_trial");
  write_stats(w, a.awake_max_per_trial);

  w.key("phases").begin_array();
  for (const PhaseAggregate& ph : a.phases) {
    w.begin_object();
    w.kv("name", ph.name);
    w.kv("marks", ph.marks);
    w.kv("messages", ph.messages);
    w.kv("bits", ph.bits);
    w.key("messages_per_trial");
    write_stats(w, ph.messages_per_trial);
    w.key("message_bits");
    write_histogram(w, ph.message_bits);
    w.end_object();
  }
  w.end_array();

  w.key("counters");
  write_counters(w, a.counters);

  w.key("engine");
  write_engine(w, a.engine);

  w.end_object();
}

std::string aggregate_to_json(const ProfileAggregate& a) {
  std::ostringstream os;
  json::Writer w(os);
  write_aggregate(w, a);
  RISE_CHECK(w.complete());
  os << '\n';
  return os.str();
}

namespace {

/// Shared top-N phase table: rows of (name, line), sorted by `weight` desc,
/// stable on name for equal weights.
template <typename Row>
void append_top(std::ostringstream& os, std::vector<Row> rows,
                std::size_t top_n) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.name < b.name;
  });
  std::size_t shown = std::min(rows.size(), top_n);
  for (std::size_t i = 0; i < shown; ++i) {
    append_row(os, rows[i].name, rows[i].line);
  }
  if (shown < rows.size()) {
    os << "  ... " << (rows.size() - shown) << " more\n";
  }
}

struct TextRow {
  std::string name;
  std::uint64_t weight = 0;
  std::string line;
};

}  // namespace

std::string format_profile(const RunProfile& p, std::size_t top_n) {
  std::ostringstream os;
  os << "run profile: " << p.algorithm << " on " << p.graph << " (n="
     << p.num_nodes << ", m=" << p.num_edges << ", schedule=" << p.schedule
     << ", delay=" << p.delay << ", seed=" << p.seed << ", "
     << (p.synchronous ? "sync" : "async") << ")\n";
  os << "totals: messages=" << p.messages << " bits=" << p.bits
     << " deliveries=" << p.deliveries << " events=" << p.events
     << " rounds=" << p.rounds << " time_units=" << fmt_double(p.time_units)
     << '\n';
  if (p.awake_rounds.count() > 0) {
    os << "awake_rounds: total=" << p.awake_total
       << " p50=" << p.awake_rounds.approx_quantile(0.5)
       << " p90=" << p.awake_rounds.approx_quantile(0.9)
       << " max=" << p.awake_max << " sleep_dropped=" << p.sleep_dropped
       << '\n';
  }

  os << "phases (by messages):\n";
  std::vector<TextRow> rows;
  for (const PhaseProfile& ph : p.phases) {
    if (ph.messages == 0 && ph.marks == 0) continue;
    std::ostringstream line;
    line << "messages=" << ph.messages << " bits=" << ph.bits
         << " marks=" << ph.marks;
    if (ph.messages > 0) {
      line << " span=[" << ph.first_send << "," << ph.last_send << "]";
    }
    rows.push_back({ph.name, ph.messages, line.str()});
  }
  append_top(os, std::move(rows), top_n);

  if (p.classes.size() > 1 || (!p.classes.empty() && p.classes[0].nodes > 0)) {
    os << "classes:\n";
    for (const ClassProfile& c : p.classes) {
      if (c.nodes == 0 && c.messages == 0) continue;
      std::ostringstream line;
      line << "nodes=" << c.nodes << " messages=" << c.messages
           << " sent/node p50=" << c.sent_per_node.approx_quantile(0.5)
           << " max=" << c.sent_per_node.max();
      append_row(os, c.name, line.str());
    }
  }

  if (!p.counters.empty()) {
    os << "counters:\n";
    for (const auto& [name, v] : p.counters) {
      append_row(os, name, std::to_string(v));
    }
  }

  const EngineProfile& e = p.engine;
  os << "engine: backend=" << (e.backend.empty() ? "?" : e.backend)
     << " popped=" << e.events_popped << " queue_hw=" << e.queue_high_water
     << " ring_hw=" << e.ring_high_water
     << " overflow_hw=" << e.overflow_high_water
     << " rounds_stepped=" << e.rounds_stepped << '\n';

  if (!p.timers.empty()) {
    os << "timers:\n";
    for (const TimerProfile& t : p.timers) {
      std::ostringstream line;
      line << "calls=" << t.calls << " wall="
           << fmt_double(t.wall_seconds * 1e3, 3) << "ms";
      if (t.sim_ticks > 0) line << " sim_ticks=" << t.sim_ticks;
      append_row(os, t.name, line.str());
    }
  }
  return os.str();
}

std::string format_aggregate(const ProfileAggregate& a, std::size_t top_n) {
  std::ostringstream os;
  os << "profile aggregate over " << a.trials << " trials\n";
  os << "totals: messages=" << a.messages << " bits=" << a.bits
     << " events=" << a.events << '\n';
  if (a.messages_per_trial.count() > 0) {
    os << "messages/trial: mean=" << fmt_double(a.messages_per_trial.mean())
       << " p50=" << fmt_double(a.messages_per_trial.quantile(0.5))
       << " p90=" << fmt_double(a.messages_per_trial.quantile(0.9))
       << " max=" << fmt_double(a.messages_per_trial.max()) << '\n';
  }
  if (a.time_units.count() > 0) {
    os << "time_units: mean=" << fmt_double(a.time_units.mean())
       << " p50=" << fmt_double(a.time_units.quantile(0.5))
       << " max=" << fmt_double(a.time_units.max()) << '\n';
  }
  if (a.awake_rounds.count() > 0) {
    os << "awake_rounds: total=" << a.awake_total
       << " p50=" << a.awake_rounds.approx_quantile(0.5)
       << " p90=" << a.awake_rounds.approx_quantile(0.9)
       << " max=" << a.awake_max << " sleep_dropped=" << a.sleep_dropped
       << " max/trial p50=" << fmt_double(a.awake_max_per_trial.quantile(0.5))
       << '\n';
  }

  os << "phases (by messages):\n";
  std::vector<TextRow> rows;
  for (const PhaseAggregate& ph : a.phases) {
    if (ph.messages == 0 && ph.marks == 0) continue;
    std::ostringstream line;
    line << "messages=" << ph.messages << " bits=" << ph.bits
         << " marks=" << ph.marks;
    if (ph.messages_per_trial.count() > 0) {
      line << " per-trial p50=" << fmt_double(ph.messages_per_trial.quantile(0.5))
           << " p90=" << fmt_double(ph.messages_per_trial.quantile(0.9));
    }
    rows.push_back({ph.name, ph.messages, line.str()});
  }
  append_top(os, std::move(rows), top_n);

  if (!a.counters.empty()) {
    os << "counters:\n";
    for (const auto& [name, v] : a.counters) {
      append_row(os, name, std::to_string(v));
    }
  }

  const EngineProfile& e = a.engine;
  os << "engine: backend=" << (e.backend.empty() ? "?" : e.backend)
     << " popped=" << e.events_popped << " queue_hw=" << e.queue_high_water
     << " rounds_stepped=" << e.rounds_stepped << '\n';
  return os.str();
}

std::string format_profile_document(const json::Value& doc,
                                    std::size_t top_n) {
  RISE_CHECK_MSG(doc.is_object(), "profile document is not a JSON object");
  std::string kind = get_str(doc, "kind");
  RISE_CHECK_MSG(kind == "run_profile" || kind == "profile_aggregate",
                 "not a profile document (kind=" << kind << ")");

  std::ostringstream os;
  const json::Value* totals = doc.find("totals");
  if (kind == "run_profile") {
    os << "run profile: " << get_str(doc, "algorithm") << " on "
       << get_str(doc, "graph") << " (n=" << get_u64(doc, "num_nodes")
       << ", m=" << get_u64(doc, "num_edges")
       << ", schedule=" << get_str(doc, "schedule")
       << ", delay=" << get_str(doc, "delay")
       << ", seed=" << get_u64(doc, "seed") << ")\n";
    if (totals != nullptr) {
      os << "totals: messages=" << get_u64(*totals, "messages")
         << " bits=" << get_u64(*totals, "bits")
         << " events=" << get_u64(*totals, "events")
         << " rounds=" << get_u64(*totals, "rounds")
         << " time_units=" << fmt_double(get_num(*totals, "time_units"))
         << '\n';
    }
    const json::Value* awake = doc.find("awake_rounds");
    if (awake != nullptr && get_u64(*awake, "count") > 0 && totals != nullptr) {
      const LogHistogram h = read_histogram(*awake);
      os << "awake_rounds: total=" << get_u64(*totals, "awake_total")
         << " p50=" << h.approx_quantile(0.5)
         << " p90=" << h.approx_quantile(0.9)
         << " max=" << get_u64(*totals, "awake_max")
         << " sleep_dropped=" << get_u64(*totals, "sleep_dropped") << '\n';
    }
  } else {
    os << "profile aggregate over " << get_u64(doc, "trials") << " trials\n";
    if (totals != nullptr) {
      os << "totals: messages=" << get_u64(*totals, "messages")
         << " bits=" << get_u64(*totals, "bits")
         << " events=" << get_u64(*totals, "events") << '\n';
    }
    const json::Value* mpt = doc.find("messages_per_trial");
    if (mpt != nullptr && get_u64(*mpt, "count") > 0) {
      os << "messages/trial: mean=" << fmt_double(get_num(*mpt, "mean"))
         << " p50=" << fmt_double(get_num(*mpt, "p50"))
         << " p90=" << fmt_double(get_num(*mpt, "p90"))
         << " max=" << fmt_double(get_num(*mpt, "max")) << '\n';
    }
    const json::Value* awake = doc.find("awake_rounds");
    if (awake != nullptr && get_u64(*awake, "count") > 0 && totals != nullptr) {
      const LogHistogram h = read_histogram(*awake);
      os << "awake_rounds: total=" << get_u64(*totals, "awake_total")
         << " p50=" << h.approx_quantile(0.5)
         << " p90=" << h.approx_quantile(0.9)
         << " max=" << get_u64(*totals, "awake_max")
         << " sleep_dropped=" << get_u64(*totals, "sleep_dropped") << '\n';
    }
  }

  const json::Value* phases = doc.find("phases");
  if (phases != nullptr && phases->is_array()) {
    os << "phases (by messages):\n";
    std::vector<TextRow> rows;
    for (const json::Value& ph : phases->array) {
      std::uint64_t messages = get_u64(ph, "messages");
      std::uint64_t marks = get_u64(ph, "marks");
      if (messages == 0 && marks == 0) continue;
      std::ostringstream line;
      line << "messages=" << messages << " bits=" << get_u64(ph, "bits")
           << " marks=" << marks;
      rows.push_back({get_str(ph, "name"), messages, line.str()});
    }
    append_top(os, std::move(rows), top_n);
  }

  const json::Value* counters = doc.find("counters");
  if (counters != nullptr && counters->is_object() && counters->size() > 0) {
    os << "counters:\n";
    for (const auto& [name, v] : counters->object) {
      append_row(os, name, v.is_integer ? std::to_string(v.u64)
                                        : fmt_double(v.number));
    }
  }

  const json::Value* engine = doc.find("engine");
  if (engine != nullptr && engine->is_object()) {
    os << "engine: backend=" << get_str(*engine, "backend")
       << " popped=" << get_u64(*engine, "events_popped")
       << " queue_hw=" << get_u64(*engine, "queue_high_water")
       << " rounds_stepped=" << get_u64(*engine, "rounds_stepped") << '\n';
  }

  return os.str();
}

}  // namespace rise::obs
