// Log-bucketed histograms for the observability layer (src/obs).
//
// A LogHistogram buckets 64-bit values by binary order of magnitude:
// bucket 0 holds the value 0, bucket k >= 1 holds [2^(k-1), 2^k). That is
// exactly std::bit_width(v), so add() is a handful of instructions — cheap
// enough to sit on the engine's per-send path when a probe is attached.
// Alongside the buckets the exact count / sum / min / max are kept, so
// totals never lose precision to bucketing.
//
// merge() adds another histogram elementwise; it is associative and
// commutative (a test pins this), which is what lets the campaign runner
// merge per-trial histograms in any grouping without changing the result.
#pragma once

#include <bit>
#include <cstdint>

namespace rise::obs {

class LogHistogram {
 public:
  /// Buckets 0..64: bucket 0 = {0}, bucket k = [2^(k-1), 2^k) for k >= 1,
  /// bucket 64 = [2^63, 2^64).
  static constexpr unsigned kBuckets = 65;

  static unsigned bucket_of(std::uint64_t v) {
    return static_cast<unsigned>(std::bit_width(v));
  }
  /// Smallest value that lands in bucket b.
  static std::uint64_t bucket_lo(unsigned b) {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }
  /// Largest value that lands in bucket b.
  static std::uint64_t bucket_hi(unsigned b) {
    if (b == 0) return 0;
    if (b >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }

  void add(std::uint64_t v, std::uint64_t weight = 1) {
    if (weight == 0) return;
    counts_[bucket_of(v)] += weight;
    count_ += weight;
    sum_ += v * weight;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  void merge(const LogHistogram& other) {
    for (unsigned b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_ > 0) {
      if (other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
    }
  }

  bool empty() const { return count_ == 0; }
  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  /// Exact min/max of the added values; 0 when empty.
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return count_ == 0 ? 0 : max_; }
  std::uint64_t bucket_count(unsigned b) const {
    return b < kBuckets ? counts_[b] : 0;
  }

  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Rebuilds a histogram from its serialized form (per-bucket counts plus
  /// the exact count/sum/min/max) — the inverse of the sparse JSON encoding
  /// in src/obs/profile.cpp. A restored histogram is indistinguishable from
  /// the original under every accessor and under merge(), which is what lets
  /// the shard orchestrator re-merge profiles parsed from worker documents.
  static LogHistogram restore(const std::uint64_t (&counts)[kBuckets],
                              std::uint64_t count, std::uint64_t sum,
                              std::uint64_t min, std::uint64_t max) {
    LogHistogram h;
    for (unsigned b = 0; b < kBuckets; ++b) h.counts_[b] = counts[b];
    h.count_ = count;
    h.sum_ = sum;
    if (count > 0) {
      h.min_ = min;
      h.max_ = max;
    }
    return h;
  }

  /// Bucket-resolution nearest-rank quantile: the lower bound of the bucket
  /// containing the ceil(p * count)-th value. 0 when empty; p outside [0, 1]
  /// is clamped. For exact cross-trial quantiles use SampleStats — this is
  /// the cheap single-run approximation shown in profile breakdowns.
  std::uint64_t approx_quantile(double p) const;

  friend bool operator==(const LogHistogram& a, const LogHistogram& b);

 private:
  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

bool operator==(const LogHistogram& a, const LogHistogram& b);

}  // namespace rise::obs
