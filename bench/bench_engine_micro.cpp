// google-benchmark micro-benchmarks for the substrates: simulator event
// throughput, graph generators, the greedy spanner, the D(k,q) construction,
// and girth computation. These quantify the cost of the experiment harness
// itself, independent of any paper claim.
#include <benchmark/benchmark.h>

#include "algo/flooding.hpp"
#include "algo/ranked_dfs.hpp"
#include "algo/sleeping.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/high_girth.hpp"
#include "graph/spanner.hpp"
#include "obs/probe.hpp"
#include "sim/async_engine.hpp"
#include "sim/kernel.hpp"
#include "sim/sync_engine.hpp"

namespace {

using namespace rise;

sim::Instance make_inst(const graph::Graph& g, sim::Knowledge k) {
  sim::InstanceOptions opt;
  opt.knowledge = k;
  Rng rng(1);
  return sim::Instance::create(g, opt, rng);
}

void BM_AsyncFloodingEvents(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  Rng rng(n);
  const auto g = graph::connected_gnp(n, 8.0 / n, rng);
  const auto inst = make_inst(g, sim::Knowledge::KT0);
  const auto delays = sim::unit_delay();
  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto result = sim::run_async(inst, *delays, sim::wake_single(0), 1,
                                       algo::flooding_factory());
    events += result.metrics.events;
    benchmark::DoNotOptimize(result.metrics.messages);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
// n = 10^4 is the acceptance-gate size for the engine refactor; see
// EXPERIMENTS.md "Engine micro-benchmarks" and BENCH_engine_micro.json.
BENCHMARK(BM_AsyncFloodingEvents)->Arg(1000)->Arg(4000)->Arg(10000);

/// Same workload on the flat-kernel path with a warm workspace — the
/// steady-state campaign trial. The n = 10^4 ratio against
/// BM_AsyncFloodingEvents/10000 is the kernel-layer acceptance gate (>= 2x,
/// BENCH_engine_micro.json); past the warm-up trial the loop body performs
/// zero heap allocations (bench_million_node gates that at n = 10^6).
void BM_KernelFloodingEvents(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  Rng rng(n);
  const auto g = graph::connected_gnp(n, 8.0 / n, rng);
  const auto inst = make_inst(g, sim::Knowledge::KT0);
  const auto delays = sim::unit_delay();
  const auto schedule = sim::wake_single(0);
  const sim::KernelRunner kernel = algo::flooding_kernel();
  sim::RunWorkspace workspace;
  sim::AsyncKernelArgs args;
  args.instance = &inst;
  args.delays = delays.get();
  args.schedule = &schedule;
  args.seed = 1;
  args.workspace = &workspace;
  std::uint64_t events = 0;
  for (auto _ : state) {
    auto result = kernel.run_async(args);
    events += result.metrics.events;
    benchmark::DoNotOptimize(result.metrics.messages);
    workspace.recycle_result(std::move(result));
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KernelFloodingEvents)->Arg(10000);

/// The tentpole size: flooding on G(10^6, 8/n), wake-all, kernel path.
/// connected_gnp is hopeless at this n (hundreds of expected isolated
/// nodes), so the graph is plain gnp and the schedule wakes everyone —
/// every node and edge is exercised regardless of connectivity.
void BM_MillionNodeKernelFlooding(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  Rng rng(1);
  const auto g = graph::gnp(n, 8.0 / static_cast<double>(n), rng);
  const auto inst = make_inst(g, sim::Knowledge::KT0);
  const auto delays = sim::unit_delay();
  const auto schedule = sim::wake_all(n);
  const sim::KernelRunner kernel = algo::flooding_kernel();
  sim::RunWorkspace workspace;
  sim::AsyncKernelArgs args;
  args.instance = &inst;
  args.delays = delays.get();
  args.schedule = &schedule;
  args.seed = 7;
  args.workspace = &workspace;
  std::uint64_t events = 0;
  for (auto _ : state) {
    auto result = kernel.run_async(args);
    events += result.metrics.events;
    benchmark::DoNotOptimize(result.metrics.messages);
    workspace.recycle_result(std::move(result));
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MillionNodeKernelFlooding)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

/// Same flooding workload under adversarial random delays in [1, tau], run
/// once per timeline backend so a regression in either the calendar queue or
/// the heap fallback is visible in isolation.
void BM_AsyncFloodingTimeline(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto mode = state.range(1) == 0 ? sim::EventQueue::Mode::kBuckets
                                        : sim::EventQueue::Mode::kHeap;
  Rng rng(n);
  const auto g = graph::connected_gnp(n, 8.0 / n, rng);
  const auto inst = make_inst(g, sim::Knowledge::KT0);
  const auto delays = sim::random_delay(16, 5);
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::AsyncEngine engine(inst, *delays, sim::wake_single(0), 1);
    engine.set_event_queue_mode(mode);
    const auto result = engine.run(algo::flooding_factory());
    events += result.metrics.events;
    benchmark::DoNotOptimize(result.metrics.messages);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AsyncFloodingTimeline)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->ArgNames({"n", "heap"});

/// A flooding clone with zero probe calls — the pre-observability hot path.
/// Paired with BM_ProbeDisabledFlooding below, it prices the disabled-probe
/// branches (Context::probe() + the NodeProbe null checks in the production
/// algo::flooding) that now sit on every wake. tools/check_probe_overhead.py
/// gates the pair at <= 2% in CI.
class ProbeFreeFlooding final : public sim::Process {
 public:
  void on_wake(sim::Context& ctx, sim::WakeCause) override {
    ctx.broadcast(sim::make_message(algo::kFloodWake, {}, 8));
  }
  void on_message(sim::Context&, const sim::Incoming&) override {}
};

sim::ProcessFactory probe_free_flooding_factory() {
  return [](sim::NodeId) { return std::make_unique<ProbeFreeFlooding>(); };
}

void probe_overhead_workload(benchmark::State& state,
                             const sim::ProcessFactory& factory,
                             obs::Probe* probe) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  Rng rng(n);
  const auto g = graph::connected_gnp(n, 8.0 / n, rng);
  const auto inst = make_inst(g, sim::Knowledge::KT0);
  const auto delays = sim::unit_delay();
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::AsyncEngine engine(inst, *delays, sim::wake_single(0), 1);
    engine.set_probe(probe);
    const auto result = engine.run(factory);
    events += result.metrics.events;
    benchmark::DoNotOptimize(result.metrics.messages);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}

void BM_ProbeFreeFlooding(benchmark::State& state) {
  probe_overhead_workload(state, probe_free_flooding_factory(), nullptr);
}
BENCHMARK(BM_ProbeFreeFlooding)->Arg(10000);

void BM_ProbeDisabledFlooding(benchmark::State& state) {
  // Production flooding (probe calls compiled in), no probe attached: every
  // NodeProbe call is one branch on nullptr. This is the default rise_cli
  // path, so the <= 2% gate is the cost every unprofiled run pays.
  probe_overhead_workload(state, algo::flooding_factory(), nullptr);
}
BENCHMARK(BM_ProbeDisabledFlooding)->Arg(10000);

void BM_ProbeEnabledFlooding(benchmark::State& state) {
  // Informative (not gated): full attribution — phase marks, counters,
  // per-send accounting, queue statistics.
  obs::Probe probe;
  probe_overhead_workload(state, algo::flooding_factory(), &probe);
}
BENCHMARK(BM_ProbeEnabledFlooding)->Arg(10000);

void BM_SyncFloodingRounds(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  Rng rng(n);
  const auto g = graph::connected_gnp(n, 8.0 / n, rng);
  const auto inst = make_inst(g, sim::Knowledge::KT0);
  for (auto _ : state) {
    const auto result =
        sim::run_sync(inst, sim::wake_single(0), 1, algo::flooding_factory());
    benchmark::DoNotOptimize(result.metrics.rounds);
  }
}
BENCHMARK(BM_SyncFloodingRounds)->Arg(1000)->Arg(4000);

/// Sleeping-model families on the virtual-process path: prices the nap
/// bookkeeping (asleep_until scans, drop accounting) the sleeping engine adds
/// per round. state.range(1) selects the family (0 = smis, 1 = smatching).
void BM_SyncSleepingRounds(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const bool matching = state.range(1) == 1;
  Rng rng(n);
  const auto g = graph::connected_gnp(n, 8.0 / n, rng);
  sim::InstanceOptions opt;
  opt.knowledge = sim::Knowledge::KT0;
  opt.bandwidth = sim::Bandwidth::CONGEST;
  Rng irng(1);
  const auto inst = sim::Instance::create(g, opt, irng);
  sim::SyncRunLimits limits;
  limits.sleeping_model = true;
  const auto factory = matching ? algo::sleeping_matching_factory()
                                : algo::sleeping_mis_factory();
  for (auto _ : state) {
    const auto result =
        sim::run_sync(inst, sim::wake_single(0), 1, factory, limits);
    benchmark::DoNotOptimize(result.metrics.sleep_dropped);
  }
}
BENCHMARK(BM_SyncSleepingRounds)
    ->Args({1000, 0})
    ->Args({4000, 0})
    ->Args({1000, 1})
    ->Args({4000, 1})
    ->ArgNames({"n", "matching"});

/// Same workloads on the flat-kernel path with a warm workspace — the
/// campaign steady state for the sleeping families (bit-identical to the
/// virtual path by test_sim_kernels).
void BM_KernelSleepingRounds(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const bool matching = state.range(1) == 1;
  Rng rng(n);
  const auto g = graph::connected_gnp(n, 8.0 / n, rng);
  sim::InstanceOptions opt;
  opt.knowledge = sim::Knowledge::KT0;
  opt.bandwidth = sim::Bandwidth::CONGEST;
  Rng irng(1);
  const auto inst = sim::Instance::create(g, opt, irng);
  const auto schedule = sim::wake_single(0);
  const sim::KernelRunner kernel = matching ? algo::sleeping_matching_kernel()
                                            : algo::sleeping_mis_kernel();
  sim::RunWorkspace workspace;
  sim::SyncKernelArgs args;
  args.instance = &inst;
  args.schedule = &schedule;
  args.seed = 1;
  args.limits.sleeping_model = true;
  args.workspace = &workspace;
  for (auto _ : state) {
    auto result = kernel.run_sync(args);
    benchmark::DoNotOptimize(result.metrics.sleep_dropped);
    workspace.recycle_result(std::move(result));
  }
}
BENCHMARK(BM_KernelSleepingRounds)
    ->Args({4000, 0})
    ->Args({4000, 1})
    ->ArgNames({"n", "matching"});

void BM_RankedDfs(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  Rng rng(n);
  const auto g = graph::connected_gnp(n, 8.0 / n, rng);
  const auto inst = make_inst(g, sim::Knowledge::KT1);
  const auto delays = sim::unit_delay();
  for (auto _ : state) {
    const auto result = sim::run_async(inst, *delays, sim::wake_all(n), 1,
                                       algo::ranked_dfs_factory());
    benchmark::DoNotOptimize(result.metrics.messages);
  }
}
BENCHMARK(BM_RankedDfs)->Arg(250)->Arg(500);

void BM_GreedySpanner(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  Rng rng(n);
  const auto g = graph::connected_gnp(n, 0.1, rng);
  for (auto _ : state) {
    const auto s = graph::greedy_spanner(g, 3);
    benchmark::DoNotOptimize(s.num_edges());
  }
}
BENCHMARK(BM_GreedySpanner)->Arg(300)->Arg(600);

void BM_LazebnikUstimenkoD3(benchmark::State& state) {
  const auto q = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    const auto bg = graph::lazebnik_ustimenko_d(3, q);
    benchmark::DoNotOptimize(bg.graph.num_edges());
  }
}
BENCHMARK(BM_LazebnikUstimenkoD3)->Arg(5)->Arg(11);

void BM_Girth(benchmark::State& state) {
  const auto q = static_cast<std::uint64_t>(state.range(0));
  const auto bg = graph::lazebnik_ustimenko_d(3, q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::girth(bg.graph));
  }
}
BENCHMARK(BM_Girth)->Arg(5)->Arg(7);

void BM_BfsTree(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  Rng rng(n);
  const auto g = graph::connected_gnp(n, 8.0 / n, rng);
  for (auto _ : state) {
    const auto t = graph::bfs_tree(g, 0);
    benchmark::DoNotOptimize(t.depth.back());
  }
}
BENCHMARK(BM_BfsTree)->Arg(10000);

}  // namespace
