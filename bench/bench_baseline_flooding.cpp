// Baseline row of Table 1: the standard flooding algorithm.
// Claim: time = rho_awk exactly (in delay units), messages = 2m = Theta(m).
// This is the yardstick every other scheme's message count is compared to.
#include <cstdio>

#include "algo/flooding.hpp"
#include "bench_util.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sim/async_engine.hpp"

namespace {

using namespace rise;

void run() {
  bench::section("Baseline: flooding (KT0, async, no advice)");
  std::printf("paper: time rho_awk, messages Theta(m)\n\n");
  bench::Table table({"graph", "n", "m", "rho_awk", "time_units", "messages",
                      "msgs/2m"});
  Rng rng(1);
  struct W {
    std::string name;
    graph::Graph g;
  };
  std::vector<W> workloads;
  workloads.push_back({"grid_32x32", graph::grid(32, 32)});
  workloads.push_back({"gnp_1000", graph::connected_gnp(1000, 8.0 / 1000, rng)});
  workloads.push_back({"regular_1000_6", graph::random_regular(1000, 6, rng)});
  workloads.push_back({"lollipop_100_400", graph::lollipop(100, 400)});
  workloads.push_back({"tree_1500", graph::random_tree(1500, rng)});
  workloads.push_back({"hypercube_10", graph::hypercube(10)});

  for (const auto& [name, g] : workloads) {
    sim::InstanceOptions opt;
    opt.knowledge = sim::Knowledge::KT0;
    opt.bandwidth = sim::Bandwidth::CONGEST;
    Rng irng(7);
    const auto inst = sim::Instance::create(g, opt, irng);
    const auto schedule = sim::wake_single(0);
    const auto delays = sim::unit_delay();
    const auto result = sim::run_async(inst, *delays, schedule, 3,
                                       algo::flooding_factory());
    const auto rho = graph::awake_distance(g, {0});
    table.add_row({name, bench::fmt_u(g.num_nodes()),
                   bench::fmt_u(g.num_edges()), bench::fmt_u(rho),
                   bench::fmt_f(result.metrics.time_units(), 1),
                   bench::fmt_u(result.metrics.messages),
                   bench::fmt_f(static_cast<double>(result.metrics.messages) /
                                    (2.0 * static_cast<double>(g.num_edges())),
                                3)});
  }
  table.print();
  std::printf(
      "\nshape check: msgs/2m == 1.000 on every row (each directed edge "
      "carries exactly one wake-up), time == rho_awk + echo.\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
