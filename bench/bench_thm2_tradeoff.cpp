// Table 1, row "Theorem 2": time-restricted KT1 algorithms on the high-girth
// family G_k need Omega(n^{1+1/k}) messages.
//
// Achievable side: the 1-time-unit broadcast by the awake centers sends
// exactly n (n^{1/k} + 1) messages — sweeping q (hence n = q^k) for k = 3
// and k = 5 traces the n^{1+1/k} curve. The unrestricted-time comparison
// (RankedDFS) sends only O(n log n) messages but takes Theta(n) time,
// locating the crossover the two theorems predict.
//
// Each (k, q) point is a distribution over seeds (the adversary's ID
// permutation is randomized), executed in parallel by the campaign runner
// with a custom trial function; NIH correctness is asserted per trial.
#include <cmath>
#include <cstdio>

#include "algo/ranked_dfs.hpp"
#include "bench_util.hpp"
#include "graph/algorithms.hpp"
#include "lb/lower_bound_graphs.hpp"
#include "lb/nih.hpp"
#include "lb/time_restricted.hpp"
#include "sim/async_engine.hpp"
#include "support/check.hpp"

namespace {

using namespace rise;

constexpr std::size_t kSeeds = 8;

runner::TrialFn bcast_trial(unsigned k, std::uint64_t q) {
  return [k, q](const app::ExperimentSpec& spec) {
    const auto fam = lb::make_kt1_family(k, q);
    Rng rng(mix_seed(spec.seed, 0xF));
    const auto inst = lb::make_kt1_instance(fam.family, rng);
    app::ExperimentReport report;
    report.algorithm = "centers_broadcast";
    report.num_nodes = inst.num_nodes();
    report.num_edges = inst.graph().num_edges();
    const auto delays = sim::unit_delay();
    report.result = sim::run_async(
        inst, *delays, fam.family.centers_awake(), spec.seed,
        lb::nih_reduction_factory(lb::centers_broadcast_factory()));
    RISE_CHECK_MSG(
        lb::nih_correct_count(report.result, inst, fam.family) == fam.family.n,
        "a center mis-identified its crucial neighbor");
    return report;
  };
}

void q_sweep(unsigned k, const std::vector<std::uint64_t>& qs) {
  std::printf("\nG_k family, k = %u (girth >= %u), %zu seeds per q\n", k,
              k + 5, kSeeds);
  bench::Table table({"q", "n=q^k", "girth", "bcast msgs (mean +- sd)",
                      "n^{1+1/k}", "mean/n^{1+1/k}", "bcast time",
                      "runs (fail/err)"});
  for (std::uint64_t q : qs) {
    // The topology is deterministic per (k, q); only IDs vary with the
    // seed, so girth is computed once outside the sweep.
    const auto fam = lb::make_kt1_family(k, q);
    const auto girth = graph::girth(fam.family.graph);
    app::ExperimentSpec base;
    base.graph =
        "kt1family:" + std::to_string(k) + ":" + std::to_string(q);
    base.algorithm = "centers_broadcast";
    base.schedule = "centers";
    base.seed = q;
    // The 1-unit broadcast is not meant to wake the whole family; NIH
    // correctness (asserted per trial) is the success criterion.
    const auto result = bench::campaign_sweep(
        base, kSeeds,
        "thm2_k" + std::to_string(k) + "_q" + std::to_string(q),
        bcast_trial(k, q), /*require_all_awake=*/false);
    const auto& t = result.total;
    const double n = fam.family.n;
    const double curve = std::pow(n, 1.0 + 1.0 / k);
    table.add_row(
        {bench::fmt_u(q), bench::fmt_u(fam.family.n), bench::fmt_u(girth),
         bench::fmt_mean_sd(t.messages, 0), bench::fmt_f(curve, 0),
         bench::fmt_f(t.messages.count() > 0 ? t.messages.mean() / curve : 0.0,
                      3),
         bench::fmt_mean_sd(t.time_units, 1),
         bench::fmt_u(t.trials) + " (" + bench::fmt_u(t.failures) + "/" +
             bench::fmt_u(t.errors) + ")"});
  }
  table.print();
}

void crossover(unsigned k, std::uint64_t q) {
  const auto fam = lb::make_kt1_family(k, q);
  Rng rng(q + 1);
  const auto inst = lb::make_kt1_instance(fam.family, rng);
  const auto delays = sim::unit_delay();
  const auto bcast = sim::run_async(inst, *delays, fam.family.centers_awake(),
                                    3, lb::centers_broadcast_factory());
  const auto dfs = sim::run_async(inst, *delays, fam.family.centers_awake(),
                                  3, algo::ranked_dfs_factory());
  std::printf(
      "\ncrossover on G_%u (q=%llu, n=%u): broadcast = %llu msgs in %.0f "
      "time units; RankedDFS = %llu msgs in %.0f time units.\n",
      k, static_cast<unsigned long long>(q), fam.family.n,
      static_cast<unsigned long long>(bcast.metrics.messages),
      bcast.metrics.time_units(),
      static_cast<unsigned long long>(dfs.metrics.messages),
      dfs.metrics.time_units());
}

}  // namespace

int main() {
  bench::section(
      "Theorem 2: messages of (k+1)-time-restricted algorithms on G_k");
  q_sweep(3, {3, 5, 7, 11});
  q_sweep(5, {2, 3});
  crossover(3, 7);
  std::printf(
      "\nshape check: bcast/n^{1+1/k} is ~1 across the sweep — the "
      "1-time-unit algorithm sits exactly on the lower-bound curve, while "
      "unrestricted time buys O(n log n) messages at Theta(n) time "
      "(Theorem 3), matching the paper's trade-off; NIH is solved "
      "correctly by every center in every trial.\n");
  return 0;
}
