// Table 1, row "Theorem 2": time-restricted KT1 algorithms on the high-girth
// family G_k need Omega(n^{1+1/k}) messages.
//
// Achievable side: the 1-time-unit broadcast by the awake centers sends
// exactly n (n^{1/k} + 1) messages — sweeping q (hence n = q^k) for k = 3
// and k = 5 traces the n^{1+1/k} curve. The unrestricted-time comparison
// (RankedDFS) sends only O(n log n) messages but takes Theta(n) time,
// locating the crossover the two theorems predict.
#include <cmath>
#include <cstdio>

#include "algo/ranked_dfs.hpp"
#include "bench_util.hpp"
#include "graph/algorithms.hpp"
#include "lb/lower_bound_graphs.hpp"
#include "lb/nih.hpp"
#include "lb/time_restricted.hpp"
#include "sim/async_engine.hpp"

namespace {

using namespace rise;

void q_sweep(unsigned k, const std::vector<std::uint64_t>& qs) {
  std::printf("\nG_k family, k = %u (girth >= %u)\n", k, k + 5);
  bench::Table table({"q", "n=q^k", "girth", "bcast msgs", "n^{1+1/k}",
                      "bcast/n^{1+1/k}", "bcast time", "NIH correct"});
  for (std::uint64_t q : qs) {
    const auto fam = lb::make_kt1_family(k, q);
    Rng rng(q);
    const auto inst = lb::make_kt1_instance(fam.family, rng);
    const auto delays = sim::unit_delay();
    const auto result = sim::run_async(
        inst, *delays, fam.family.centers_awake(), 7,
        lb::nih_reduction_factory(lb::centers_broadcast_factory()));
    const double n = fam.family.n;
    const double curve = std::pow(n, 1.0 + 1.0 / k);
    table.add_row(
        {bench::fmt_u(q), bench::fmt_u(fam.family.n),
         bench::fmt_u(graph::girth(fam.family.graph)),
         bench::fmt_u(result.metrics.messages), bench::fmt_f(curve, 0),
         bench::fmt_f(static_cast<double>(result.metrics.messages) / curve,
                      3),
         bench::fmt_f(result.metrics.time_units(), 1),
         bench::fmt_u(lb::nih_correct_count(result, inst, fam.family))});
  }
  table.print();
}

void crossover(unsigned k, std::uint64_t q) {
  const auto fam = lb::make_kt1_family(k, q);
  Rng rng(q + 1);
  const auto inst = lb::make_kt1_instance(fam.family, rng);
  const auto delays = sim::unit_delay();
  const auto bcast = sim::run_async(inst, *delays, fam.family.centers_awake(),
                                    3, lb::centers_broadcast_factory());
  const auto dfs = sim::run_async(inst, *delays, fam.family.centers_awake(),
                                  3, algo::ranked_dfs_factory());
  std::printf(
      "\ncrossover on G_%u (q=%llu, n=%u): broadcast = %llu msgs in %.0f "
      "time units; RankedDFS = %llu msgs in %.0f time units.\n",
      k, static_cast<unsigned long long>(q), fam.family.n,
      static_cast<unsigned long long>(bcast.metrics.messages),
      bcast.metrics.time_units(),
      static_cast<unsigned long long>(dfs.metrics.messages),
      dfs.metrics.time_units());
}

}  // namespace

int main() {
  bench::section(
      "Theorem 2: messages of (k+1)-time-restricted algorithms on G_k");
  q_sweep(3, {3, 5, 7, 11});
  q_sweep(5, {2, 3});
  crossover(3, 7);
  std::printf(
      "\nshape check: bcast/n^{1+1/k} is ~1 across the sweep — the "
      "1-time-unit algorithm sits exactly on the lower-bound curve, while "
      "unrestricted time buys O(n log n) messages at Theta(n) time "
      "(Theorem 3), matching the paper's trade-off.\n");
  return 0;
}
