// Table 1, row "Theorem 1": the advice-vs-messages trade-off for KT0
// randomized advising schemes.
//
// Lower bound (paper): expected messages <= n^2 / 2^{beta+4} log2(n) forces
// Omega(beta) advice bits per node. Achievable side (this harness): with
// beta prefix bits per center, the probing scheme sends ~ 2 n (n+1)/2^beta
// messages. Sweeping beta on the family G traces both curves; their ratio is
// bounded, i.e. the lower bound is tight up to O(log n).
//
// Each beta point is now a *distribution* over seeds (instance ports and
// probing order are randomized), executed in parallel by the campaign
// runner with a custom trial function — the family G is not expressible as
// a spec string. NIH correctness of every center is asserted inside each
// trial; a violation would surface in the err column.
#include <cmath>
#include <cstdio>

#include "advice/advice.hpp"
#include "bench_util.hpp"
#include "lb/beta_probing.hpp"
#include "lb/nih.hpp"
#include "sim/async_engine.hpp"
#include "support/check.hpp"

namespace {

using namespace rise;

constexpr std::size_t kSeeds = 8;

runner::TrialFn beta_trial(graph::NodeId n, unsigned beta) {
  return [n, beta](const app::ExperimentSpec& spec) {
    const auto fam = lb::make_kt0_family(n);
    Rng rng(mix_seed(spec.seed, 0xE));
    auto inst = lb::make_kt0_instance(fam, rng);
    app::ExperimentReport report;
    report.algorithm = "beta:" + std::to_string(beta);
    report.num_nodes = inst.num_nodes();
    report.num_edges = inst.graph().num_edges();
    report.advice = advice::apply_oracle(inst, *lb::beta_probing_oracle(beta));
    const auto delays = sim::unit_delay();
    report.result = sim::run_async(inst, *delays, fam.centers_awake(),
                                   spec.seed, lb::beta_probing_factory(beta));
    RISE_CHECK_MSG(lb::nih_correct_count(report.result, inst, fam) == n,
                   "a center mis-identified its crucial neighbor");
    return report;
  };
}

void beta_sweep(graph::NodeId n) {
  std::printf("\nfamily G with |V| = %u (3n = %u nodes, centers awake), %zu "
              "seeds per beta\n",
              n, 3 * n, kSeeds);
  bench::Table table({"beta", "advice bits/center", "messages (mean +- sd)",
                      "LB: n^2/2^{b+4}lg n", "mean/LB", "time_units",
                      "runs (fail/err)"});
  const double logn = std::log2(static_cast<double>(n));
  for (unsigned beta = 0; beta <= static_cast<unsigned>(logn); ++beta) {
    app::ExperimentSpec base;
    base.graph = "kt0family:" + std::to_string(n);  // informational
    base.algorithm = "beta:" + std::to_string(beta);
    base.schedule = "centers";
    base.seed = beta + 1;
    // NIH probing leaves most of U asleep by design; aggregate every trial.
    const auto result = bench::campaign_sweep(
        base, kSeeds,
        "thm1_n" + std::to_string(n) + "_beta" + std::to_string(beta),
        beta_trial(n, beta), /*require_all_awake=*/false);
    const auto& t = result.total;
    // Advice length is a property of the oracle, identical across seeds;
    // read it back from any successful trial.
    std::uint64_t advice_bits = 0;
    for (const auto& r : result.trials) {
      if (r.ok) {
        advice_bits = r.advice_max_bits;
        break;
      }
    }
    const double lower = static_cast<double>(n) * n /
                         (std::pow(2.0, beta + 4) * logn);
    table.add_row(
        {bench::fmt_u(beta), bench::fmt_u(advice_bits),
         bench::fmt_mean_sd(t.messages, 0), bench::fmt_f(lower, 0),
         bench::fmt_f(t.messages.count() > 0 ? t.messages.mean() / lower : 0.0,
                      1),
         bench::fmt_mean_sd(t.time_units, 1),
         bench::fmt_u(t.trials) + " (" + bench::fmt_u(t.failures) + "/" +
             bench::fmt_u(t.errors) + ")"});
  }
  table.print();
}

}  // namespace

int main() {
  bench::section(
      "Theorem 1: advice length vs message complexity on the KT0 family G");
  beta_sweep(128);
  beta_sweep(256);
  std::printf(
      "\nshape check: mean measured messages halve with every advice bit, "
      "tracking the n^2/2^beta lower-bound curve within an O(log n) factor "
      "(the mean/LB column); every center solves NIH correctly in every "
      "trial (asserted inside the trial function — a violation would show "
      "up as an error).\n");
  return 0;
}
