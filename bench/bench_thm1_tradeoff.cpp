// Table 1, row "Theorem 1": the advice-vs-messages trade-off for KT0
// randomized advising schemes.
//
// Lower bound (paper): expected messages <= n^2 / 2^{beta+4} log2(n) forces
// Omega(beta) advice bits per node. Achievable side (this harness): with
// beta prefix bits per center, the probing scheme sends ~ 2 n (n+1)/2^beta
// messages. Sweeping beta on the family G traces both curves; their ratio is
// bounded, i.e. the lower bound is tight up to O(log n).
#include <cmath>
#include <cstdio>

#include "advice/advice.hpp"
#include "bench_util.hpp"
#include "lb/beta_probing.hpp"
#include "lb/nih.hpp"
#include "sim/async_engine.hpp"

namespace {

using namespace rise;

void beta_sweep(graph::NodeId n) {
  std::printf("\nfamily G with |V| = %u (3n = %u nodes, centers awake)\n", n,
              3 * n);
  bench::Table table({"beta", "advice bits/center", "messages",
                      "LB: n^2/2^{b+4}lg n", "measured/LB", "NIH correct",
                      "time_units"});
  const double logn = std::log2(static_cast<double>(n));
  for (unsigned beta = 0; beta <= static_cast<unsigned>(logn); ++beta) {
    const auto fam = lb::make_kt0_family(n);
    Rng rng(beta + 1);
    auto inst = lb::make_kt0_instance(fam, rng);
    const auto stats =
        advice::apply_oracle(inst, *lb::beta_probing_oracle(beta));
    const auto delays = sim::unit_delay();
    const auto result = sim::run_async(inst, *delays, fam.centers_awake(),
                                       beta, lb::beta_probing_factory(beta));
    const double lower = static_cast<double>(n) * n /
                         (std::pow(2.0, beta + 4) * logn);
    table.add_row(
        {bench::fmt_u(beta), bench::fmt_u(stats.max_bits),
         bench::fmt_u(result.metrics.messages), bench::fmt_f(lower, 0),
         bench::fmt_f(static_cast<double>(result.metrics.messages) / lower,
                      1),
         bench::fmt_u(lb::nih_correct_count(result, inst, fam)),
         bench::fmt_f(result.metrics.time_units(), 1)});
  }
  table.print();
}

}  // namespace

int main() {
  bench::section(
      "Theorem 1: advice length vs message complexity on the KT0 family G");
  beta_sweep(128);
  beta_sweep(256);
  std::printf(
      "\nshape check: measured messages halve with every advice bit, "
      "tracking the n^2/2^beta lower-bound curve within an O(log n) factor "
      "(the measured/LB column); every center solves NIH in O(1) time "
      "units.\n");
  return 0;
}
