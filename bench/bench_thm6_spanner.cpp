// Table 1, rows "Theorem 6" and "Corollary 2": the spanner + child-encoding
// advising schemes in the asynchronous KT0 CONGEST model.
//
//   Thm 6: time O(k rho_awk log n), msgs O(k n^{1+1/k}),
//          advice O(n^{1/k} log^2 n).
//   Cor 2: k = ceil(log2 n) => O(rho log^2 n) time, O(n log^2 n) msgs,
//          O(log^2 n) advice.
//
// The k-sweep shows the three-way trade-off directly; the Cor 2 row is the
// k = log n endpoint.
#include <cmath>
#include <cstdio>

#include "advice/spanner_scheme.hpp"
#include "bench_util.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/spanner.hpp"
#include "sim/async_engine.hpp"

namespace {

using namespace rise;

void k_sweep(const std::string& gname, const graph::Graph& g,
             const sim::WakeSchedule& schedule) {
  const double n = g.num_nodes();
  const double rho = sim::schedule_awake_distance(g, schedule);
  std::printf("\nworkload %s: n=%.0f m=%zu rho_awk=%.0f\n", gname.c_str(), n,
              g.num_edges(), rho);
  bench::Table table({"k", "spanner edges", "time_units", "time/(k rho lg n)",
                      "messages", "msgs/(k n^{1+1/k})", "max advice",
                      "advice/(n^{1/k} lg^2 n)"});
  const double logn = std::log2(n);
  const unsigned k_log = std::max<unsigned>(2, static_cast<unsigned>(logn));
  std::vector<std::pair<std::string, unsigned>> ks = {
      {"1 (=flood)", 1}, {"2", 2}, {"3", 3}, {"4", 4},
      {"Cor2: " + std::to_string(k_log), k_log}};
  for (const auto& [label, k] : ks) {
    sim::InstanceOptions opt;
    opt.knowledge = sim::Knowledge::KT0;
    opt.bandwidth = sim::Bandwidth::CONGEST;
    Rng rng(k + 10);
    auto inst = sim::Instance::create(g, opt, rng);
    const auto stats = advice::apply_oracle(inst, *advice::spanner_oracle(k));
    const auto spanner = graph::greedy_spanner(g, k);
    const auto delays = sim::unit_delay();
    const auto result = sim::run_async(inst, *delays, schedule, k,
                                       advice::spanner_factory());
    const double n_pow = std::pow(n, 1.0 + 1.0 / k);
    table.add_row(
        {label, bench::fmt_u(spanner.num_edges()),
         bench::fmt_f(result.metrics.time_units(), 0),
         bench::fmt_f(result.metrics.time_units() /
                          (k * std::max(1.0, rho) * logn),
                      3),
         bench::fmt_u(result.metrics.messages),
         bench::fmt_f(static_cast<double>(result.metrics.messages) /
                          (k * n_pow),
                      3),
         bench::fmt_u(stats.max_bits),
         bench::fmt_f(static_cast<double>(stats.max_bits) /
                          (std::pow(n, 1.0 / k) * logn * logn),
                      3)});
  }
  table.print();
}

}  // namespace

int main() {
  bench::section("Theorem 6 / Corollary 2: k-sweep of the spanner scheme");
  {
    Rng rng(1);
    const auto g = graph::connected_gnp(600, 0.15, rng);
    k_sweep("dense_gnp_600", g, sim::wake_single(0));
  }
  {
    Rng rng(2);
    const auto g = graph::connected_gnp(1000, 10.0 / 1000, rng);
    Rng srng(3);
    k_sweep("sparse_gnp_1000", g,
            sim::wake_random_subset(1000, 0.05, srng));
  }
  std::printf(
      "\nshape check: messages fall and time rises as k grows; every ratio "
      "column stays O(1) — the Theorem 6 three-way trade-off. The Cor 2 row "
      "has polylog advice with near-linear messages.\n");
  return 0;
}
