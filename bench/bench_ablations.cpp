// Ablation studies for the design choices DESIGN.md calls out:
//   A1. RankedDFS *rank discarding* (Theorem 3's case (b)): without it every
//       token completes its DFS and messages blow up from O(n log n) to
//       Theta(|A_0| * n).
//   A2. FastWakeUp *sampling rate*: the sqrt(log n / n) root probability is
//       the message-optimal point — over- and under-sampling both cost.
//   A3. CEN *sibling-tree arity*: the binary heap gives O(log n) per-level
//       latency; the linked-list ablation degrades to Theta(degree) while
//       advice/messages stay the same.
#include <cmath>
#include <cstdio>

#include "advice/child_encoding.hpp"
#include "advice/sqrt_threshold.hpp"
#include "algo/fast_wakeup.hpp"
#include "algo/ranked_dfs.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "sim/async_engine.hpp"
#include "sim/sync_engine.hpp"

namespace {

using namespace rise;

void ablation_rank_discarding() {
  bench::section("A1: RankedDFS with vs without rank discarding");
  bench::Table table({"n", "awake |A0|", "msgs (with ranks)",
                      "msgs (no discard)", "blowup", "~|A0|*n"});
  for (graph::NodeId n : {100u, 200u, 400u}) {
    Rng rng(n);
    const auto g = graph::connected_gnp(n, 8.0 / n, rng);
    sim::InstanceOptions opt;
    opt.knowledge = sim::Knowledge::KT1;
    Rng irng(1);
    const auto inst = sim::Instance::create(g, opt, irng);
    Rng srng(2);
    const auto schedule = sim::wake_random_subset(n, 0.25, srng);
    const auto delays = sim::unit_delay();
    const auto with = sim::run_async(inst, *delays, schedule, 3,
                                     algo::ranked_dfs_factory());
    const auto without = sim::run_async(inst, *delays, schedule, 3,
                                        algo::ranked_dfs_no_discard_factory());
    table.add_row(
        {bench::fmt_u(n), bench::fmt_u(schedule.wakes.size()),
         bench::fmt_u(with.metrics.messages),
         bench::fmt_u(without.metrics.messages),
         bench::fmt_f(static_cast<double>(without.metrics.messages) /
                          static_cast<double>(with.metrics.messages),
                      1),
         bench::fmt_u(schedule.wakes.size() * static_cast<std::uint64_t>(n))});
  }
  table.print();
  std::printf("the random ranks are what keep Theorem 3 near-linear: without "
              "case (b), messages track |A0|*n.\n");
}

void ablation_sampling_rate() {
  bench::section("A2: FastWakeUp sampling-rate sweep (n=1000, rho=1)");
  const graph::NodeId n = 1000;
  Rng rng(7);
  const auto g = graph::connected_gnp(n, 1.0 / std::sqrt(double(n)), rng);
  sim::InstanceOptions opt;
  opt.knowledge = sim::Knowledge::KT1;
  Rng irng(1);
  const auto inst = sim::Instance::create(g, opt, irng);
  const auto schedule = sim::dominating_set_wakeup(g);
  const double p_star =
      std::sqrt(std::log(static_cast<double>(n)) / static_cast<double>(n));
  bench::Table table({"p / p*", "rounds", "messages", "roots sampled",
                      "activate! broadcasts"});
  for (double mult : {0.0, 0.1, 0.5, 1.0, 4.0, 16.0}) {
    algo::FastWakeupProbe probe;
    const auto result = sim::run_sync(
        inst, schedule, 11, algo::fast_wakeup_factory(&probe, mult * p_star));
    table.add_row({bench::fmt_f(mult, 1), bench::fmt_u(result.wakeup_span()),
                   bench::fmt_u(result.metrics.messages),
                   bench::fmt_u(probe.roots_sampled),
                   bench::fmt_u(probe.activate_broadcasts)});
  }
  table.print();
  std::printf(
      "undersampling (p -> 0) shifts cost to activate! broadcasts; "
      "oversampling multiplies BFS-construction traffic — sqrt(log n / n) "
      "balances the two, as the Theorem 4 analysis predicts.\n");
}

void ablation_cen_arity() {
  bench::section("A3: CEN sibling structure — binary heap vs linked list");
  bench::Table table({"star n", "binary: time", "chain: time", "slowdown",
                      "binary msgs", "chain msgs"});
  for (graph::NodeId n : {128u, 512u, 2048u}) {
    const auto g = graph::star(n);
    sim::InstanceOptions opt;
    opt.knowledge = sim::Knowledge::KT0;
    opt.bandwidth = sim::Bandwidth::CONGEST;
    Rng r1(1), r2(1);
    auto binary_inst = sim::Instance::create(g, opt, r1);
    auto chain_inst = sim::Instance::create(g, opt, r2);
    advice::apply_oracle(binary_inst, *advice::child_encoding_oracle(0, 2));
    advice::apply_oracle(chain_inst, *advice::child_encoding_oracle(0, 1));
    const auto delays = sim::unit_delay();
    const auto b = sim::run_async(binary_inst, *delays, sim::wake_single(0),
                                  5, advice::child_encoding_factory());
    const auto c = sim::run_async(chain_inst, *delays, sim::wake_single(0), 5,
                                  advice::child_encoding_factory());
    table.add_row({bench::fmt_u(n), bench::fmt_f(b.metrics.time_units(), 0),
                   bench::fmt_f(c.metrics.time_units(), 0),
                   bench::fmt_f(c.metrics.time_units() /
                                    std::max(1.0, b.metrics.time_units()),
                                1),
                   bench::fmt_u(b.metrics.messages),
                   bench::fmt_u(c.metrics.messages)});
  }
  table.print();
  std::printf(
      "same advice length and message count, but the binary heap turns "
      "Theta(deg) latency into O(log deg) — this is why Theorem 5(B) is "
      "O(D log n) rather than O(D + Delta).\n");
}

void ablation_threshold() {
  bench::section(
      "A4: Theorem 5(A) degree threshold sweep (why sqrt(n) is the optimum)");
  const graph::NodeId n = 900;
  Rng rng(4);
  // Star-of-stars: many medium-degree tree nodes, so the threshold matters.
  const auto g = graph::connected_gnp(n, 0.15, rng);
  bench::Table table({"threshold", "messages", "max advice (bits)",
                      "avg advice (bits)"});
  const double root_n = std::sqrt(static_cast<double>(n));
  for (double t : {2.0, root_n / 4, root_n, root_n * 4,
                   static_cast<double>(n)}) {
    sim::InstanceOptions opt;
    opt.knowledge = sim::Knowledge::KT0;
    opt.bandwidth = sim::Bandwidth::CONGEST;
    Rng irng(1);
    auto inst = sim::Instance::create(g, opt, irng);
    const auto stats =
        advice::apply_oracle(inst, *advice::sqrt_threshold_oracle(0, t));
    const auto delays = sim::unit_delay();
    const auto result = sim::run_async(inst, *delays, sim::wake_all(n), 3,
                                       advice::sqrt_threshold_factory());
    table.add_row({bench::fmt_f(t, 1), bench::fmt_u(result.metrics.messages),
                   bench::fmt_u(stats.max_bits),
                   bench::fmt_f(stats.avg_bits, 1)});
  }
  table.print();
  std::printf(
      "low thresholds make everyone broadcast (many messages, tiny advice); "
      "high thresholds store long port lists (big advice). The theorem's "
      "sqrt(n) sits at the knee of the messages-vs-advice curve.\n");
}

}  // namespace

int main() {
  ablation_rank_discarding();
  ablation_sampling_rate();
  ablation_cen_arity();
  ablation_threshold();
  return 0;
}
