// Hunt-throughput micro-benchmark: evaluations per second of the adversary
// search driver's hot path (prepared configs + per-worker workspaces), at a
// configuration shaped like the CI hunt gate but smaller.
//
// Each case runs run_hunt twice with identical options, best-of-N wall
// clock; the two reports must agree on champion spec, value, and digest
// (the hunt determinism contract), and the binary exits 1 on any mismatch —
// so the bench doubles as a cheap end-to-end determinism gate.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "check/scenario.hpp"
#include "search/hunt.hpp"

namespace {

using namespace rise;
using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

struct Case {
  const char* name;
  const char* graph;
  const char* algorithm;
  search::Objective objective;
};

bool reports_agree(const search::HuntReport& a, const search::HuntReport& b) {
  return a.champion.spec.graph == b.champion.spec.graph &&
         a.champion.spec.schedule == b.champion.spec.schedule &&
         a.champion.spec.delay == b.champion.spec.delay &&
         a.champion.spec.seed == b.champion.spec.seed &&
         a.champion_value == b.champion_value &&
         a.champion_digest == b.champion_digest;
}

}  // namespace

int main() {
  const std::vector<Case> cases = {
      {"flooding_messages", "cgnp:64:0.1", "flooding",
       search::Objective::kMessages},
      {"fip06_messages", "cgnp:64:0.1", "fip06",
       search::Objective::kMessages},
      {"flooding_rho_awk", "cgnp:64:0.1", "flooding",
       search::Objective::kRhoAwk},
  };

  std::printf("%-20s %10s %10s %12s %12s %8s\n", "case", "evals", "wall_ms",
              "evals_per_s", "champion", "ratio");
  bool deterministic = true;
  for (const Case& c : cases) {
    search::HuntOptions options;
    options.initial.spec.graph = c.graph;
    options.initial.spec.schedule = "single";
    options.initial.spec.algorithm = c.algorithm;
    options.initial.spec.delay = "unit";
    options.initial.spec.seed = 1;
    options.objective = c.objective;
    options.budget = 128;
    options.lambda = 8;
    options.seed = 42;
    options.jobs = 1;
    options.baseline = false;
    options.limits.max_nodes = 128;

    double best_ms = 0.0;
    search::HuntReport first;
    for (int rep = 0; rep < 2; ++rep) {
      const Clock::time_point t0 = Clock::now();
      search::HuntReport report = search::run_hunt(options);
      const double ms = ms_between(t0, Clock::now());
      if (rep == 0) {
        best_ms = ms;
        first = std::move(report);
      } else {
        if (ms < best_ms) best_ms = ms;
        if (!reports_agree(first, report)) {
          std::printf("FAIL %s: repeated hunts disagree\n", c.name);
          deterministic = false;
        }
      }
    }
    const double evals_per_s =
        best_ms > 0.0
            ? static_cast<double>(first.evaluations) / (best_ms / 1000.0)
            : 0.0;
    std::printf("%-20s %10llu %10.1f %12.0f %12.0f %8.3f\n", c.name,
                static_cast<unsigned long long>(first.evaluations), best_ms,
                evals_per_s, first.champion_value, first.envelope_ratio());
  }
  if (!deterministic) return 1;
  std::printf("determinism: repeated hunts bit-identical\n");
  return 0;
}
