// Campaign-throughput micro-benchmark: prepared/reuse hot path vs the
// rebuild-per-trial path, plus an allocation-count probe.
//
// Each case runs the same CampaignPlan twice — once with reuse disabled
// (every trial re-prepares its inputs and builds a fresh engine) and once
// with the shared-preparation + per-worker-workspace path — at jobs=1,
// best-of-N wall clock. Both variants use the same PrepareMode, so their
// per-trial results must be bit-identical; the bench folds every trial's
// scalar observables into a digest and fails (exit 1) on any mismatch.
//
// The global operator new override counts allocations per campaign, giving
// the allocs-per-trial figures recorded in BENCH_campaign.json. The gated
// case (gnp:1000:0.01 x flooding x unit, 200 trials) must reach the
// trials-per-second ratio enforced by tools/check_campaign_throughput.py.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "runner/campaign.hpp"
#include "support/rng.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

// Counting overrides (this binary only). The default operator new[] /
// delete[] forward here, so one pair covers both forms; nothing in the
// workload uses over-aligned types.
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace rise;
using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Order- and scheduling-independent only because trials are folded in
/// trial-index order — the same sequence run_campaign aggregates in.
std::uint64_t digest_trials(const runner::CampaignResult& result) {
  std::uint64_t h = 0x5EEDCA3Bu;
  auto fold = [&h](std::uint64_t v) {
    std::uint64_t s = h ^ v;
    h = splitmix64(s);
  };
  for (const runner::TrialResult& r : result.trials) {
    fold(r.trial.index);
    fold(r.ok ? 1 : 0);
    fold(r.messages);
    fold(r.bits);
    std::uint64_t time_bits = 0;
    static_assert(sizeof(time_bits) == sizeof(r.time_units));
    std::memcpy(&time_bits, &r.time_units, sizeof(time_bits));
    fold(time_bits);
    fold(r.rounds);
    fold(r.wakeup_span);
    fold(r.awake_node_ticks);
    fold(r.awake_count);
  }
  return h;
}

struct VariantStats {
  double best_wall_ms = 0.0;
  double trials_per_sec = 0.0;
  std::uint64_t allocs_per_trial = 0;
  std::uint64_t digest = 0;
};

struct CaseResult {
  std::string name;
  bool gate = false;
  runner::CampaignPlan plan;  // reuse flag ignored; set per variant
  VariantStats rebuild;
  VariantStats prepared;
  double ratio = 0.0;
  bool digest_match = false;
};

VariantStats run_variant(runner::CampaignPlan plan, bool reuse,
                         std::size_t reps) {
  plan.reuse = reuse;
  runner::CampaignOptions options;
  options.jobs = 1;
  VariantStats stats;
  const std::size_t trials = runner::expand_trials(plan).size();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const std::uint64_t allocs_before =
        g_allocs.load(std::memory_order_relaxed);
    const auto t0 = Clock::now();
    const runner::CampaignResult result = runner::run_campaign(plan, options);
    const double wall_ms = ms_between(t0, Clock::now());
    const std::uint64_t allocs =
        g_allocs.load(std::memory_order_relaxed) - allocs_before;
    const std::uint64_t digest = digest_trials(result);
    if (rep == 0) {
      stats.best_wall_ms = wall_ms;
      stats.allocs_per_trial = trials != 0 ? allocs / trials : 0;
      stats.digest = digest;
    } else {
      stats.best_wall_ms = std::min(stats.best_wall_ms, wall_ms);
      if (digest != stats.digest) {
        std::fprintf(stderr,
                     "FATAL: digest varies across repetitions (rep %zu)\n",
                     rep);
        std::exit(1);
      }
    }
  }
  stats.trials_per_sec = stats.best_wall_ms > 0.0
                             ? static_cast<double>(trials) /
                                   (stats.best_wall_ms / 1000.0)
                             : 0.0;
  return stats;
}

CaseResult run_case(CaseResult c, std::size_t reps) {
  std::fprintf(stderr, "case %s: rebuild...\n", c.name.c_str());
  c.rebuild = run_variant(c.plan, /*reuse=*/false, reps);
  std::fprintf(stderr, "case %s: prepared/reuse...\n", c.name.c_str());
  c.prepared = run_variant(c.plan, /*reuse=*/true, reps);
  c.ratio = c.rebuild.trials_per_sec > 0.0
                ? c.prepared.trials_per_sec / c.rebuild.trials_per_sec
                : 0.0;
  c.digest_match = c.rebuild.digest == c.prepared.digest;
  if (!c.digest_match) {
    std::fprintf(stderr, "FATAL: digest mismatch in case %s\n",
                 c.name.c_str());
    std::exit(1);
  }
  std::fprintf(stderr,
               "case %s: %.1f -> %.1f trials/s (%.2fx), "
               "allocs/trial %llu -> %llu\n",
               c.name.c_str(), c.rebuild.trials_per_sec,
               c.prepared.trials_per_sec, c.ratio,
               static_cast<unsigned long long>(c.rebuild.allocs_per_trial),
               static_cast<unsigned long long>(c.prepared.allocs_per_trial));
  return c;
}

void write_variant(std::FILE* out, const char* name,
                   const VariantStats& stats) {
  std::fprintf(out,
               "      \"%s\": {\"best_wall_ms\": %.3f, "
               "\"trials_per_sec\": %.1f, \"allocs_per_trial\": %llu, "
               "\"digest\": \"0x%016llx\"}",
               name, stats.best_wall_ms, stats.trials_per_sec,
               static_cast<unsigned long long>(stats.allocs_per_trial),
               static_cast<unsigned long long>(stats.digest));
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t trials = 200;
  std::size_t reps = 5;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trials") {
      trials = static_cast<std::size_t>(std::strtoull(value().c_str(),
                                                      nullptr, 10));
    } else if (arg == "--reps") {
      reps = static_cast<std::size_t>(std::strtoull(value().c_str(),
                                                    nullptr, 10));
    } else if (arg == "--out") {
      out_path = value();
    } else {
      std::fprintf(stderr,
                   "usage: bench_campaign_micro [--trials N] [--reps N] "
                   "[--out PATH]\n");
      return 2;
    }
  }

  std::vector<CaseResult> cases;
  {
    // The acceptance-gate configuration (see ISSUE/EXPERIMENTS.md): shared
    // preparation makes the rebuild-vs-reuse comparison apples-to-apples —
    // both variants prepare from the base seed, one of them once per trial.
    CaseResult c;
    c.name = "gnp1000_flooding_unit_shared";
    c.gate = true;
    c.plan.base = {"gnp:1000:0.01", "single", "flooding", "unit", 7};
    c.plan.num_seeds = trials;
    c.plan.prepare_mode = runner::PrepareMode::kSharedConfig;
    cases.push_back(run_case(std::move(c), reps));
  }
  {
    // Default semantics: every trial draws its own graph, so only the
    // per-worker workspace (engine storage + payload arena) is reusable.
    // Digest equality here pins that workspace reuse is purely mechanical.
    CaseResult c;
    c.name = "gnp1000_flooding_unit_per_trial";
    c.plan.base = {"gnp:1000:0.01", "single", "flooding", "unit", 7};
    c.plan.num_seeds = trials;
    c.plan.prepare_mode = runner::PrepareMode::kPerTrial;
    cases.push_back(run_case(std::move(c), reps));
  }
  {
    // Advice-oracle amortization: fip06 precomputes a BFS tree per
    // preparation, so shared-config reuse removes the oracle from the hot
    // path entirely.
    CaseResult c;
    c.name = "cgnp600_fip06_advice_shared";
    c.plan.base = {"cgnp:600:0.02", "single", "fip06", "unit", 7};
    c.plan.num_seeds = std::max<std::size_t>(trials / 2, 1);
    c.plan.prepare_mode = runner::PrepareMode::kSharedConfig;
    cases.push_back(run_case(std::move(c), reps));
  }

  std::FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 2;
    }
  }
  std::fprintf(out,
               "{\n  \"tool\": \"bench_campaign_micro\",\n"
               "  \"trials\": %zu,\n  \"reps\": %zu,\n  \"jobs\": 1,\n"
               "  \"cases\": [\n",
               trials, reps);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    std::fprintf(out,
                 "    {\n      \"name\": \"%s\",\n      \"gate\": %s,\n"
                 "      \"graph\": \"%s\",\n      \"algo\": \"%s\",\n"
                 "      \"schedule\": \"%s\",\n      \"delay\": \"%s\",\n"
                 "      \"prepare_mode\": \"%s\",\n",
                 c.name.c_str(), c.gate ? "true" : "false",
                 c.plan.base.graph.c_str(), c.plan.base.algorithm.c_str(),
                 c.plan.base.schedule.c_str(), c.plan.base.delay.c_str(),
                 c.plan.prepare_mode == runner::PrepareMode::kSharedConfig
                     ? "shared_config"
                     : "per_trial");
    write_variant(out, "rebuild", c.rebuild);
    std::fprintf(out, ",\n");
    write_variant(out, "prepared", c.prepared);
    std::fprintf(out,
                 ",\n      \"trials_per_sec_ratio\": %.3f,\n"
                 "      \"digest_match\": %s\n    }%s\n",
                 c.ratio, c.digest_match ? "true" : "false",
                 i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  if (out != stdout) std::fclose(out);
  return 0;
}
