// Table 1, row "Theorem 3": RankedDFS in the asynchronous KT1 LOCAL model.
// Claim: time and message complexity O(n log n) w.h.p., against an oblivious
// adversary that may stagger wake-ups arbitrarily.
//
// Series printed:
//   (a) n-sweep under the worst schedule we know (staggered doubling, the
//       Sec. 3.1.1 stress): messages/(n ln n) and time/(n ln n) stay bounded;
//   (b) schedule comparison at fixed n;
//   (c) flooding comparison: on dense graphs RankedDFS sends far fewer
//       messages (o(m)) at the cost of Theta(n) time.
#include <cmath>
#include <cstdio>

#include "algo/flooding.hpp"
#include "algo/ranked_dfs.hpp"
#include "algo/ranked_dfs_congest.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "sim/async_engine.hpp"

namespace {

using namespace rise;

sim::Instance kt1_instance(const graph::Graph& g, std::uint64_t seed) {
  sim::InstanceOptions opt;
  opt.knowledge = sim::Knowledge::KT1;
  opt.bandwidth = sim::Bandwidth::LOCAL;
  Rng rng(seed);
  return sim::Instance::create(g, opt, rng);
}

void n_sweep() {
  bench::section("Theorem 3 (a): n-sweep, staggered-doubling adversary");
  bench::Table table({"n", "m", "messages", "msgs/(n ln n)", "time_units",
                      "time/(n ln n)"});
  for (graph::NodeId n : {125u, 250u, 500u, 1000u, 2000u}) {
    Rng rng(n);
    const auto g = graph::connected_gnp(n, 8.0 / n, rng);
    const auto inst = kt1_instance(g, n + 1);
    const auto schedule = sim::staggered_doubling(n, 25, 2.0, rng);
    const auto delays = sim::unit_delay();
    const auto result = sim::run_async(inst, *delays, schedule, n,
                                       algo::ranked_dfs_factory());
    const double nln = n * std::log(static_cast<double>(n));
    table.add_row(
        {bench::fmt_u(n), bench::fmt_u(g.num_edges()),
         bench::fmt_u(result.metrics.messages),
         bench::fmt_f(static_cast<double>(result.metrics.messages) / nln),
         bench::fmt_f(result.metrics.time_units(), 0),
         bench::fmt_f(result.metrics.time_units() / nln)});
  }
  table.print();
  std::printf(
      "shape check: both ratio columns stay O(1) as n doubles (the paper's "
      "O(n log n) w.h.p. bound).\n");
}

void schedule_comparison() {
  bench::section("Theorem 3 (b): adversarial schedule comparison (n = 1000)");
  const graph::NodeId n = 1000;
  Rng rng(17);
  const auto g = graph::connected_gnp(n, 8.0 / n, rng);
  const auto inst = kt1_instance(g, 3);
  bench::Table table({"schedule", "initially awake", "messages",
                      "time_units"});
  struct S {
    std::string name;
    sim::WakeSchedule schedule;
  };
  std::vector<S> schedules;
  schedules.push_back({"single", sim::wake_single(0)});
  schedules.push_back({"all", sim::wake_all(n)});
  schedules.push_back(
      {"random_30pct", sim::wake_random_subset(n, 0.3, rng)});
  schedules.push_back(
      {"staggered_x2", sim::staggered_doubling(n, 25, 2.0, rng)});
  for (auto& [name, schedule] : schedules) {
    const auto delays = sim::unit_delay();
    const auto result = sim::run_async(inst, *delays, schedule, 5,
                                       algo::ranked_dfs_factory());
    table.add_row({name, bench::fmt_u(schedule.wakes.size()),
                   bench::fmt_u(result.metrics.messages),
                   bench::fmt_f(result.metrics.time_units(), 0)});
  }
  table.print();
}

void flooding_comparison() {
  bench::section("Theorem 3 (c): vs flooding on dense graphs");
  bench::Table table({"n", "m", "flood msgs", "dfs msgs", "dfs/flood",
                      "flood time", "dfs time"});
  for (graph::NodeId n : {200u, 400u, 800u}) {
    Rng rng(n);
    const auto g = graph::connected_gnp(n, 0.3, rng);
    const auto inst = kt1_instance(g, 11);
    const auto schedule = sim::wake_all(n);
    const auto delays = sim::unit_delay();
    const auto flood = sim::run_async(inst, *delays, schedule, 5,
                                      algo::flooding_factory());
    const auto dfs = sim::run_async(inst, *delays, schedule, 5,
                                    algo::ranked_dfs_factory());
    table.add_row(
        {bench::fmt_u(n), bench::fmt_u(g.num_edges()),
         bench::fmt_u(flood.metrics.messages),
         bench::fmt_u(dfs.metrics.messages),
         bench::fmt_f(static_cast<double>(dfs.metrics.messages) /
                          static_cast<double>(flood.metrics.messages),
                      3),
         bench::fmt_f(flood.metrics.time_units(), 0),
         bench::fmt_f(dfs.metrics.time_units(), 0)});
  }
  table.print();
  std::printf(
      "shape check: RankedDFS sends o(m) messages (ratio falls with density) "
      "but pays Theta(n) time — the Theorem 2 / Theorem 3 trade-off.\n");
}

void congest_gap() {
  bench::section(
      "Theorem 3 (d): why LOCAL matters — the CONGEST echo-DFS variant");
  bench::Table table({"n", "m", "LOCAL msgs", "CONGEST msgs",
                      "congest/local", "~m/n"});
  for (graph::NodeId n : {200u, 400u, 800u}) {
    Rng rng(n + 3);
    const auto g = graph::connected_gnp(n, 16.0 / n, rng);
    sim::InstanceOptions local_opt, congest_opt;
    local_opt.knowledge = sim::Knowledge::KT1;
    congest_opt.knowledge = sim::Knowledge::KT1;
    congest_opt.bandwidth = sim::Bandwidth::CONGEST;
    Rng r1(1), r2(1);
    const auto local_inst = sim::Instance::create(g, local_opt, r1);
    const auto congest_inst = sim::Instance::create(g, congest_opt, r2);
    const auto delays = sim::unit_delay();
    const auto local = sim::run_async(local_inst, *delays,
                                      sim::wake_single(0), 5,
                                      algo::ranked_dfs_factory());
    const auto congest = sim::run_async(congest_inst, *delays,
                                        sim::wake_single(0), 5,
                                        algo::ranked_dfs_congest_factory());
    table.add_row(
        {bench::fmt_u(n), bench::fmt_u(g.num_edges()),
         bench::fmt_u(local.metrics.messages),
         bench::fmt_u(congest.metrics.messages),
         bench::fmt_f(static_cast<double>(congest.metrics.messages) /
                          static_cast<double>(local.metrics.messages),
                      2),
         bench::fmt_f(static_cast<double>(g.num_edges()) / n, 2)});
  }
  table.print();
  std::printf(
      "without the LOCAL-model visited list, a token pays Theta(m) instead "
      "of Theta(n) — the congest/local ratio tracks the average degree. "
      "This is why Theorem 3 is stated for LOCAL.\n");
}

}  // namespace

int main() {
  n_sweep();
  schedule_comparison();
  flooding_comparison();
  congest_gap();
  return 0;
}
