// Table 1, rows "Theorem 5(A)" and "Theorem 5(B)": the sqrt-threshold and
// child-encoding advising schemes in the asynchronous KT0 CONGEST model.
//
//   5(A): O(D) time, O(n^{3/2}) msgs, O(sqrt(n) log n) max advice.
//   5(B): O(D log n) time, O(n) msgs, O(log n) max advice.
//
// The head-to-head table makes the trade-off visible: (A) buys optimal time
// with more messages and longer advice; (B) compresses advice to O(log n)
// and messages to O(n) at a log-factor in time.
#include <cmath>
#include <cstdio>

#include "advice/child_encoding.hpp"
#include "advice/fip06.hpp"
#include "advice/sqrt_threshold.hpp"
#include "bench_util.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sim/async_engine.hpp"

namespace {

using namespace rise;

struct Row {
  std::string scheme;
  double time_units;
  std::uint64_t messages;
  std::size_t max_advice;
  double avg_advice;
};

Row measure(const graph::Graph& g, const advice::AdvisingScheme& scheme,
            const std::string& name, std::uint64_t seed) {
  sim::InstanceOptions opt;
  opt.knowledge = sim::Knowledge::KT0;
  opt.bandwidth = sim::Bandwidth::CONGEST;
  Rng rng(seed);
  auto inst = sim::Instance::create(g, opt, rng);
  const auto stats = advice::apply_oracle(inst, *scheme.oracle);
  Rng srng(seed + 1);
  const auto schedule = sim::wake_random_subset(g.num_nodes(), 0.15, srng);
  const auto delays = sim::unit_delay();
  const auto result =
      sim::run_async(inst, *delays, schedule, seed, scheme.algorithm);
  return {name, result.metrics.time_units(), result.metrics.messages,
          stats.max_bits, stats.avg_bits};
}

void head_to_head(const std::string& gname, const graph::Graph& g) {
  const double n = g.num_nodes();
  const double d = graph::diameter(g);
  std::printf("\nworkload %s: n=%u m=%zu D=%.0f\n", gname.c_str(),
              g.num_nodes(), g.num_edges(), d);
  bench::Table table({"scheme", "time_units", "time/D", "messages", "msgs/n",
                      "max advice", "avg advice"});
  std::vector<Row> rows;
  rows.push_back(measure(g, advice::fip06_scheme(), "Cor1 (FIP06)", 3));
  rows.push_back(measure(g, advice::sqrt_threshold_scheme(), "Thm 5(A)", 3));
  rows.push_back(measure(g, advice::child_encoding_scheme(), "Thm 5(B) CEN", 3));
  for (const auto& r : rows) {
    table.add_row({r.scheme, bench::fmt_f(r.time_units, 1),
                   bench::fmt_f(r.time_units / d, 2),
                   bench::fmt_u(r.messages),
                   bench::fmt_f(static_cast<double>(r.messages) / n, 2),
                   bench::fmt_u(r.max_advice), bench::fmt_f(r.avg_advice, 1)});
  }
  table.print();
}

void max_advice_sweep() {
  bench::section("Theorem 5: max-advice scaling on stars (worst case for "
                 "tree degree)");
  bench::Table table({"n", "5A max advice", "5A/(sqrt(n) log2 n)",
                      "5B max advice", "5B/log2(n)"});
  for (graph::NodeId n : {256u, 1024u, 4096u}) {
    const auto g = graph::star(n);
    sim::InstanceOptions opt;
    opt.knowledge = sim::Knowledge::KT0;
    opt.bandwidth = sim::Bandwidth::CONGEST;
    Rng r1(1), r2(2);
    auto ia = sim::Instance::create(g, opt, r1);
    auto ib = sim::Instance::create(g, opt, r2);
    const auto sa = advice::apply_oracle(ia, *advice::sqrt_threshold_oracle());
    const auto sb = advice::apply_oracle(ib, *advice::child_encoding_oracle());
    const double logn = std::log2(static_cast<double>(n));
    table.add_row(
        {bench::fmt_u(n), bench::fmt_u(sa.max_bits),
         bench::fmt_f(static_cast<double>(sa.max_bits) /
                          (std::sqrt(static_cast<double>(n)) * logn),
                      3),
         bench::fmt_u(sb.max_bits),
         bench::fmt_f(static_cast<double>(sb.max_bits) / logn, 3)});
  }
  table.print();
  std::printf("shape check: 5B's max advice tracks log2(n) even where tree "
              "degrees are Theta(n).\n");
}

}  // namespace

int main() {
  bench::section("Theorem 5(A) vs 5(B) vs Corollary 1 head-to-head");
  Rng rng(1);
  head_to_head("gnp_800", graph::connected_gnp(800, 8.0 / 800, rng));
  head_to_head("dense_gnp_500", graph::connected_gnp(500, 0.25, rng));
  head_to_head("grid_25x25", graph::grid(25, 25));
  head_to_head("star_1200", graph::star(1200));
  max_advice_sweep();
  return 0;
}
