// Table 1, row "[FIP06], Cor. 1": the BFS-tree advising scheme in the
// asynchronous KT0 CONGEST model.
// Claim: O(D) time, O(n) messages, O(n) max advice, O(log n) average advice.
#include <cmath>
#include <cstdio>

#include "advice/fip06.hpp"
#include "bench_util.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sim/async_engine.hpp"

namespace {

using namespace rise;

void run() {
  bench::section("Corollary 1 (FIP06 + BFS tree + bitmap trick)");
  bench::Table table({"graph", "n", "D", "time_units", "time/D", "messages",
                      "msgs/n", "max advice (bits)", "avg advice (bits)",
                      "avg/log2(n)"});
  Rng wrng(1);
  struct W {
    std::string name;
    graph::Graph g;
  };
  std::vector<W> workloads;
  workloads.push_back({"gnp_1000", graph::connected_gnp(1000, 6.0 / 1000, wrng)});
  workloads.push_back({"grid_30x30", graph::grid(30, 30)});
  workloads.push_back({"star_1000", graph::star(1000)});
  workloads.push_back({"tree_1000", graph::random_tree(1000, wrng)});
  workloads.push_back({"dense_gnp_600", graph::connected_gnp(600, 0.2, wrng)});

  for (const auto& [name, g] : workloads) {
    sim::InstanceOptions opt;
    opt.knowledge = sim::Knowledge::KT0;
    opt.bandwidth = sim::Bandwidth::CONGEST;
    Rng rng(3);
    auto inst = sim::Instance::create(g, opt, rng);
    const auto stats = advice::apply_oracle(inst, *advice::fip06_oracle());
    Rng srng(9);
    const auto schedule =
        sim::wake_random_subset(g.num_nodes(), 0.2, srng);
    const auto delays = sim::unit_delay();
    const auto result = sim::run_async(inst, *delays, schedule, 4,
                                       advice::fip06_factory());
    const double d = graph::diameter(g);
    const double n = g.num_nodes();
    table.add_row(
        {name, bench::fmt_u(g.num_nodes()), bench::fmt_f(d, 0),
         bench::fmt_f(result.metrics.time_units(), 1),
         bench::fmt_f(result.metrics.time_units() / d, 2),
         bench::fmt_u(result.metrics.messages),
         bench::fmt_f(static_cast<double>(result.metrics.messages) / n, 3),
         bench::fmt_u(stats.max_bits), bench::fmt_f(stats.avg_bits, 1),
         bench::fmt_f(stats.avg_bits / std::log2(n), 2)});
  }
  table.print();
  std::printf(
      "shape check: time/D <= 2, msgs/n <= 2, max advice <= n bits (bitmap), "
      "avg advice O(log n).\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
