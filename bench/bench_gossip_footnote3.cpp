// Footnote 3 of the paper: push-only gossip cannot solve wake-up quickly on
// general graphs. On K_{n-1} plus one pendant vertex (constant vertex
// expansion!), the pendant waits Omega(n) expected rounds, while the clique
// itself is informed in O(log n) rounds.
#include <algorithm>
#include <cstdio>

#include "algo/gossip.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "sim/sync_engine.hpp"

namespace {

using namespace rise;

void run() {
  bench::section("Footnote 3: push gossip on K_{n-1} + pendant");
  bench::Table table({"n", "avg rounds: clique informed",
                      "avg rounds: pendant woken", "pendant/clique",
                      "pendant/n"});
  for (graph::NodeId n : {32u, 64u, 128u, 256u}) {
    const auto g = graph::complete_plus_pendant(n);
    sim::InstanceOptions opt;
    opt.knowledge = sim::Knowledge::KT0;
    Rng rng(n);
    const auto inst = sim::Instance::create(g, opt, rng);
    double clique_sum = 0, pendant_sum = 0;
    int trials = 0;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      const auto result = sim::run_sync(inst, sim::wake_single(1), seed,
                                        algo::push_gossip_factory(40ull * n));
      if (!result.all_awake()) continue;
      ++trials;
      sim::Time clique_max = 0;
      for (graph::NodeId u = 0; u + 1 < n; ++u) {
        clique_max = std::max(clique_max, result.wake_time[u]);
      }
      clique_sum += static_cast<double>(clique_max);
      pendant_sum += static_cast<double>(result.wake_time[n - 1]);
    }
    const double clique_avg = clique_sum / trials;
    const double pendant_avg = pendant_sum / trials;
    table.add_row({bench::fmt_u(n), bench::fmt_f(clique_avg, 1),
                   bench::fmt_f(pendant_avg, 1),
                   bench::fmt_f(pendant_avg / clique_avg, 1),
                   bench::fmt_f(pendant_avg / n, 2)});
  }
  table.print();
  std::printf(
      "shape check: the clique column grows like log n, the pendant column "
      "like n (pendant/n is flat) — push-only gossip is no substitute for a "
      "wake-up algorithm, which is why the paper's algorithms cannot just "
      "reuse gossip machinery.\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
