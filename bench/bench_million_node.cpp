// Million-node steady-state allocation gate (PR 7).
//
// The flat-kernel execution path exists so that a single n = 10^6 trial is
// cheap enough to repeat by the hundred: no per-node heap objects, no
// per-event allocation — after one warm-up trial primes the workspace, a
// steady-state trial must perform ZERO heap allocations. This binary proves
// that with the same global operator-new probe bench_campaign_micro uses:
// build G(n, 8/n) once, run flooding through the kernel path with a reused
// RunWorkspace, and count allocations per trial. Exit 1 if any post-warm-up
// trial allocates (CI runs this as the `million-node` job).
//
// Every trial's (events, messages, bits) triple must also match the warm-up
// trial exactly — workspace reuse never changes results.
//
// Part two benchmarks the round-parallel lock-step path: the same flooding
// workload through the sync kernel at each --trial-jobs value, emitting one
// machine-parseable `PARJOB jobs=J digest=... best_ms=...` line per row.
// Gates: every row's digest_run must equal the jobs=1 row (the
// deterministic-reduction contract), and the steady-state allocation rule
// extends to the parallel rows — chunk outboxes, the wake schedule, and the
// pool's batch registry all live in recycled storage.
// tools/check_parallel_trial.py consumes the PARJOB/PARHOST lines for the
// CI speedup gate.
//
//   bench_million_node [--n N] [--trials T] [--trial-jobs J1,J2,...]
//   (defaults: n=1000000, T=3, trial-jobs 1,2,8)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "algo/flooding.hpp"
#include "check/scenario.hpp"
#include "graph/generators.hpp"
#include "runner/thread_pool.hpp"
#include "sim/adversary.hpp"
#include "sim/delay_policy.hpp"
#include "sim/instance.hpp"
#include "sim/kernel.hpp"
#include "sim/parallel.hpp"
#include "support/rng.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

// Counting overrides (this binary only). The default operator new[] /
// delete[] forward here, so one pair covers both forms; nothing in the
// workload uses over-aligned types.
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace rise;
using Clock = std::chrono::steady_clock;

struct TrialOutcome {
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  std::uint64_t allocs = 0;
  std::uint64_t digest = 0;  ///< sync rows only: check::digest_run
  double wall_ms = 0.0;
};

TrialOutcome run_trial(const sim::KernelRunner& kernel,
                       const sim::AsyncKernelArgs& args) {
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = Clock::now();
  sim::RunResult result = kernel.run_async(args);
  const auto t1 = Clock::now();
  TrialOutcome out;
  out.events = result.metrics.events;
  out.messages = result.metrics.messages;
  out.bits = result.metrics.bits;
  // The campaign steady state: scalars extracted, per-node result buffers
  // handed back so the next trial reuses their capacity.
  args.workspace->recycle_result(std::move(result));
  out.allocs = g_allocs.load(std::memory_order_relaxed) - before;
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return out;
}

TrialOutcome run_sync_trial(const sim::KernelRunner& kernel,
                            const sim::SyncKernelArgs& args) {
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = Clock::now();
  sim::RunResult result = kernel.run_sync(args);
  const auto t1 = Clock::now();
  TrialOutcome out;
  out.events = result.metrics.events;
  out.messages = result.metrics.messages;
  out.bits = result.metrics.bits;
  out.digest = rise::check::digest_run(result);
  args.workspace->recycle_result(std::move(result));
  out.allocs = g_allocs.load(std::memory_order_relaxed) - before;
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return out;
}

std::vector<std::uint32_t> parse_jobs_list(const char* text) {
  std::vector<std::uint32_t> out;
  const char* p = text;
  while (*p != '\0') {
    char* end = nullptr;
    out.push_back(static_cast<std::uint32_t>(std::strtoul(p, &end, 10)));
    if (end == p || out.back() == 0) return {};
    if (*end == ',') {
      p = end + 1;
    } else if (*end == '\0') {
      p = end;
    } else {
      return {};
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  graph::NodeId n = 1'000'000;
  std::size_t trials = 3;
  std::vector<std::uint32_t> jobs_rows = {1, 2, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      n = static_cast<graph::NodeId>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      trials = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--trial-jobs") == 0 && i + 1 < argc) {
      jobs_rows = parse_jobs_list(argv[++i]);
      if (jobs_rows.empty()) {
        std::fprintf(stderr, "error: --trial-jobs expects J1,J2,...\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "usage: %s [--n N] [--trials T] [--trial-jobs "
                   "J1,J2,...]\n", argv[0]);
      return 2;
    }
  }

  // Setup (allocations unrestricted): G(n, 8/n) via the geometric-skip
  // generator, KT0/CONGEST instance, wake-all schedule so flooding touches
  // every node and every edge regardless of connectivity.
  const auto t_setup = Clock::now();
  Rng graph_rng(1);
  graph::Graph g = graph::gnp(n, 8.0 / static_cast<double>(n), graph_rng);
  const std::size_t m = g.num_edges();
  sim::InstanceOptions options;
  options.knowledge = sim::Knowledge::KT0;
  options.bandwidth = sim::Bandwidth::CONGEST;
  Rng instance_rng(2);
  const sim::Instance instance =
      sim::Instance::create(std::move(g), options, instance_rng);
  const auto delays = sim::unit_delay();
  const sim::WakeSchedule schedule = sim::wake_all(n);
  const sim::KernelRunner kernel = algo::flooding_kernel();
  sim::RunWorkspace workspace;
  const double setup_ms = std::chrono::duration<double, std::milli>(
                              Clock::now() - t_setup)
                              .count();
  std::printf("setup: n=%llu m=%zu in %.0f ms\n",
              static_cast<unsigned long long>(n), m, setup_ms);

  sim::AsyncKernelArgs args;
  args.instance = &instance;
  args.delays = delays.get();
  args.schedule = &schedule;
  args.seed = 7;
  args.workspace = &workspace;

  // Warm-up: sizes every workspace vector (channels, event queue, per-node
  // metrics) to its steady-state capacity.
  const TrialOutcome warm = run_trial(kernel, args);
  std::printf(
      "warmup: events=%llu messages=%llu allocs=%llu in %.0f ms\n",
      static_cast<unsigned long long>(warm.events),
      static_cast<unsigned long long>(warm.messages),
      static_cast<unsigned long long>(warm.allocs), warm.wall_ms);

  std::uint64_t steady_allocs = 0;
  bool results_stable = true;
  double best_ms = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    const TrialOutcome out = run_trial(kernel, args);
    steady_allocs += out.allocs;
    results_stable = results_stable && out.events == warm.events &&
                     out.messages == warm.messages && out.bits == warm.bits;
    best_ms = (t == 0) ? out.wall_ms : std::min(best_ms, out.wall_ms);
    std::printf("trial %zu: events=%llu allocs=%llu in %.0f ms (%.2fM ev/s)\n",
                t, static_cast<unsigned long long>(out.events),
                static_cast<unsigned long long>(out.allocs), out.wall_ms,
                out.wall_ms > 0.0
                    ? static_cast<double>(out.events) / out.wall_ms / 1000.0
                    : 0.0);
  }

  if (!results_stable) {
    std::printf("FAIL: steady-state trials diverged from the warm-up run\n");
    return 1;
  }
  if (steady_allocs != 0) {
    std::printf("FAIL: %llu heap allocations across %zu steady-state trials "
                "(gate: 0)\n",
                static_cast<unsigned long long>(steady_allocs), trials);
    return 1;
  }
  std::printf("PASS: 0 allocations in steady state; best trial %.0f ms\n",
              best_ms);

  // Part two: the same flooding workload through the round-parallel
  // lock-step path, one row per --trial-jobs value. Each row gets its own
  // pool (created before the row's warm-up, so thread startup never counts
  // against the allocation gate) and a warm-up trial that sizes the chunk
  // outboxes for that job count; the timed trials then run under the same
  // zero-allocation rule as the async gate above.
  std::printf("PARHOST cores=%zu\n", runner::ThreadPool::hardware_threads());
  std::uint64_t base_digest = 0;
  double base_best_ms = 0.0;
  bool par_ok = true;
  for (const std::uint32_t jobs : jobs_rows) {
    runner::ThreadPool pool(jobs);
    runner::PoolChunkExecutor executor(&pool);
    sim::SyncKernelArgs sargs;
    sargs.instance = &instance;
    sargs.schedule = &schedule;
    sargs.seed = 7;
    sargs.workspace = &workspace;
    if (jobs > 1) {
      sargs.parallel.jobs = jobs;
      sargs.parallel.executor = &executor;
    }
    // Two warm-ups: the inbox/next_inbox ping-pong pair swaps an odd number
    // of times per flooding run, so the two arrays alternate roles between
    // runs and BOTH must reach steady-state capacity before the gate.
    run_sync_trial(kernel, sargs);
    const TrialOutcome swarm = run_sync_trial(kernel, sargs);
    std::uint64_t row_allocs = 0;
    bool row_stable = true;
    double row_best_ms = swarm.wall_ms;
    for (std::size_t t = 0; t < trials; ++t) {
      const TrialOutcome out = run_sync_trial(kernel, sargs);
      row_allocs += out.allocs;
      row_stable = row_stable && out.digest == swarm.digest;
      row_best_ms = (t == 0) ? out.wall_ms : std::min(row_best_ms, out.wall_ms);
    }
    if (base_digest == 0) {
      base_digest = swarm.digest;
      base_best_ms = row_best_ms;
    }
    const double evps = row_best_ms > 0.0
                            ? static_cast<double>(swarm.events) / row_best_ms /
                                  1000.0
                            : 0.0;
    std::printf("PARJOB jobs=%u digest=%016llx best_ms=%.3f events=%llu "
                "evps=%.2fM allocs=%llu speedup=%.2f\n",
                jobs, static_cast<unsigned long long>(swarm.digest),
                row_best_ms, static_cast<unsigned long long>(swarm.events),
                evps, static_cast<unsigned long long>(row_allocs),
                row_best_ms > 0.0 ? base_best_ms / row_best_ms : 0.0);
    if (!row_stable || swarm.digest != base_digest) {
      std::printf("FAIL: trial-jobs=%u digest diverged from the sequential "
                  "row\n", jobs);
      par_ok = false;
    }
    if (row_allocs != 0) {
      std::printf("FAIL: %llu heap allocations across %zu parallel "
                  "steady-state trials at trial-jobs=%u (gate: 0)\n",
                  static_cast<unsigned long long>(row_allocs), trials, jobs);
      par_ok = false;
    }
  }
  if (!par_ok) return 1;
  std::printf("PASS: parallel rows digest-identical, 0 steady-state "
              "allocations\n");
  return 0;
}
