// Shared helpers for the experiment harnesses in bench/: fixed-width table
// printing in the style of the paper's Table 1, ratio columns that make the
// asymptotic *shape* of a measurement visible (a flat ratio column means the
// measurement tracks the predicted bound), and a campaign-runner front end
// so every seed sweep runs on all cores and can dump machine-readable
// BENCH_*.json artifacts.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "runner/campaign.hpp"
#include "runner/result_sink.hpp"
#include "runner/thread_pool.hpp"

namespace rise::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt_u(std::uint64_t v) { return std::to_string(v); }

inline std::string fmt_f(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Runs a seed sweep through the campaign runner on all hardware threads.
/// Results are deterministic regardless of the core count (see
/// runner/campaign.hpp). When the RISE_BENCH_JSON_DIR environment variable
/// is set, the per-trial records land in
/// $RISE_BENCH_JSON_DIR/BENCH_<artifact_name>.json. A custom `run` lets
/// benches whose workloads are not spec-expressible (the lower-bound
/// families) still sweep through the runner.
inline runner::CampaignResult campaign_sweep(const app::ExperimentSpec& base,
                                             std::size_t seeds,
                                             const std::string& artifact_name,
                                             runner::TrialFn run = {},
                                             bool require_all_awake = true) {
  runner::CampaignPlan plan;
  plan.base = base;
  plan.num_seeds = seeds;
  plan.run = std::move(run);
  plan.require_all_awake = require_all_awake;
  runner::CampaignOptions options;
  options.jobs = runner::ThreadPool::hardware_threads();

  std::ofstream json_out;
  std::unique_ptr<runner::JsonResultSink> sink;
  if (const char* dir = std::getenv("RISE_BENCH_JSON_DIR")) {
    json_out.open(std::string(dir) + "/BENCH_" + artifact_name + ".json");
    if (json_out) {
      sink = std::make_unique<runner::JsonResultSink>(json_out, plan,
                                                      options.jobs);
    }
  }
  options.sink = sink.get();
  auto result = runner::run_campaign(plan, options);
  if (json_out.is_open()) json_out << "\n";
  return result;
}

/// "mean ± sd" cell for distribution tables.
inline std::string fmt_mean_sd(const SampleStats& s, int precision = 1) {
  return fmt_f(s.mean(), precision) + " +- " + fmt_f(s.stddev(), precision);
}

/// "p50/p90/max" cell for distribution tables. Delegates every order
/// statistic to SampleStats (src/support/stats) — the repo's single
/// quantile implementation; bench code must not grow its own
/// (test_bench_util pins the delegation). "-" when the sample is empty,
/// since SampleStats::quantile throws on no data.
inline std::string fmt_quantiles(const SampleStats& s, int precision = 1) {
  if (s.count() == 0) return "-";
  return fmt_f(s.quantile(0.5), precision) + "/" +
         fmt_f(s.quantile(0.9), precision) + "/" + fmt_f(s.max(), precision);
}

}  // namespace rise::bench
