// Shared helpers for the experiment harnesses in bench/: fixed-width table
// printing in the style of the paper's Table 1, plus ratio columns that make
// the asymptotic *shape* of a measurement visible (a flat ratio column means
// the measurement tracks the predicted bound).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace rise::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt_u(std::uint64_t v) { return std::to_string(v); }

inline std::string fmt_f(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace rise::bench
