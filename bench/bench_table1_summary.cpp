// The flagship reproduction artifact: regenerates the paper's Table 1 as a
// single table, one row per theorem, with *measured* values substituted for
// the asymptotic claims. Shared workload where the model permits (a connected
// G(n, p) with a random 20% awake set); the lower-bound rows use their own
// construction families, as in the paper.
//
// Reading guide: each measured cell is followed by the paper's bound in
// brackets; the "ratio" column divides measurement by bound (constant across
// n => the asymptotic shape holds — see the per-theorem benches for the
// n-sweeps that establish constancy).
#include <cmath>
#include <cstdio>

#include "advice/child_encoding.hpp"
#include "advice/fip06.hpp"
#include "advice/spanner_scheme.hpp"
#include "advice/sqrt_threshold.hpp"
#include "algo/fast_wakeup.hpp"
#include "algo/flooding.hpp"
#include "algo/ranked_dfs.hpp"
#include "bench_util.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "lb/beta_probing.hpp"
#include "lb/lower_bound_graphs.hpp"
#include "lb/nih.hpp"
#include "lb/time_restricted.hpp"
#include "sim/async_engine.hpp"
#include "sim/sync_engine.hpp"

namespace {

using namespace rise;

struct Workload {
  graph::Graph g;
  sim::WakeSchedule schedule;
  std::uint32_t rho = 0;
  std::uint32_t diameter = 0;
};

Workload make_workload(graph::NodeId n) {
  Workload w;
  Rng rng(2026);
  w.g = graph::connected_gnp(n, 8.0 / n, rng);
  w.schedule = sim::wake_random_subset(n, 0.2, rng);
  w.rho = sim::schedule_awake_distance(w.g, w.schedule);
  w.diameter = graph::diameter(w.g);
  return w;
}

sim::Instance make_inst(const graph::Graph& g, sim::Knowledge k,
                        sim::Bandwidth b) {
  sim::InstanceOptions opt;
  opt.knowledge = k;
  opt.bandwidth = b;
  Rng rng(7);
  return sim::Instance::create(g, opt, rng);
}

void table1() {
  const graph::NodeId n = 1000;
  const Workload w = make_workload(n);
  std::printf(
      "workload: connected G(%u, 8/n), m=%zu, D=%u, 20%% awake (rho_awk=%u); "
      "lower-bound rows use their own families.\n\n",
      n, w.g.num_edges(), w.diameter, w.rho);

  bench::Table table({"row", "model", "time (measured)", "messages",
                      "advice max/avg (bits)", "paper bound (T | M | A)"});

  {  // Theorem 3
    const auto inst =
        make_inst(w.g, sim::Knowledge::KT1, sim::Bandwidth::LOCAL);
    const auto delays = sim::unit_delay();
    const auto r = sim::run_async(inst, *delays, w.schedule, 1,
                                  algo::ranked_dfs_factory());
    table.add_row({"Thm 3 RankedDFS", "async KT1 LOCAL",
                   bench::fmt_f(r.metrics.time_units(), 0) + " units",
                   bench::fmt_u(r.metrics.messages), "-",
                   "O(n log n) | O(n log n) | -"});
  }
  {  // Theorem 4
    const auto inst =
        make_inst(w.g, sim::Knowledge::KT1, sim::Bandwidth::LOCAL);
    const auto r = sim::run_sync(inst, w.schedule, 1,
                                 algo::fast_wakeup_factory());
    table.add_row({"Thm 4 FastWakeUp", "sync KT1 LOCAL",
                   bench::fmt_u(r.wakeup_span()) + " rounds",
                   bench::fmt_u(r.metrics.messages), "-",
                   "10 rho_awk | O(n^1.5 sqrt(log n)) | -"});
  }
  auto advice_row = [&](const char* name, advice::AdvisingScheme scheme,
                        const char* bound) {
    auto inst = make_inst(w.g, sim::Knowledge::KT0, sim::Bandwidth::CONGEST);
    const auto stats = advice::apply_oracle(inst, *scheme.oracle);
    const auto delays = sim::unit_delay();
    const auto r =
        sim::run_async(inst, *delays, w.schedule, 1, scheme.algorithm);
    table.add_row({name, "async KT0 CONGEST",
                   bench::fmt_f(r.metrics.time_units(), 0) + " units",
                   bench::fmt_u(r.metrics.messages),
                   bench::fmt_u(stats.max_bits) + " / " +
                       bench::fmt_f(stats.avg_bits, 1),
                   bound});
  };
  advice_row("Cor 1 [FIP06]", advice::fip06_scheme(),
             "O(D) | O(n) | O(n) max, O(log n) avg");
  advice_row("Thm 5(A) sqrt-threshold", advice::sqrt_threshold_scheme(),
             "O(D) | O(n^1.5) | O(sqrt(n) log n)");
  advice_row("Thm 5(B) child-encoding", advice::child_encoding_scheme(),
             "O(D log n) | O(n) | O(log n)");
  advice_row("Thm 6 spanner k=3", advice::spanner_scheme(3),
             "O(k rho log n) | O(k n^{1+1/k}) | O(n^{1/k} log^2 n)");
  advice_row("Cor 2 spanner k=log n", advice::corollary2_scheme(),
             "O(rho log^2 n) | O(n log^2 n) | O(log^2 n)");
  {  // Theorem 1 (lower bound; achievable side at beta = 4)
    const graph::NodeId fam_n = 128;
    const auto fam = lb::make_kt0_family(fam_n);
    Rng rng(3);
    auto inst = lb::make_kt0_instance(fam, rng);
    const auto stats =
        advice::apply_oracle(inst, *lb::beta_probing_oracle(4));
    const auto delays = sim::unit_delay();
    const auto r = sim::run_async(inst, *delays, fam.centers_awake(), 1,
                                  lb::beta_probing_factory(4));
    table.add_row({"Thm 1 (LB, beta=4 probing)", "sync/async KT0 + advice",
                   bench::fmt_f(r.metrics.time_units(), 0) + " units",
                   bench::fmt_u(r.metrics.messages) + " (n=128)",
                   bench::fmt_u(stats.max_bits) + " / -",
                   ">= n^2/2^{b+4}log n msgs | Omega(beta) advice"});
  }
  {  // Theorem 2 (lower bound; achievable side: 1-round broadcast on G_3)
    const auto fam = lb::make_kt1_family(3, 7);
    Rng rng(4);
    const auto inst = lb::make_kt1_instance(fam.family, rng);
    const auto delays = sim::unit_delay();
    const auto r = sim::run_async(inst, *delays, fam.family.centers_awake(),
                                  1, lb::centers_broadcast_factory());
    table.add_row({"Thm 2 (LB, 1-unit bcast on G_3)", "sync/async KT1 LOCAL",
                   bench::fmt_f(r.metrics.time_units(), 0) + " unit",
                   bench::fmt_u(r.metrics.messages) + " (n=343)", "-",
                   "(k+1)-time => Omega(n^{1+1/k}) msgs"});
  }
  {  // flooding baseline
    const auto inst =
        make_inst(w.g, sim::Knowledge::KT0, sim::Bandwidth::CONGEST);
    const auto delays = sim::unit_delay();
    const auto r = sim::run_async(inst, *delays, w.schedule, 1,
                                  algo::flooding_factory());
    table.add_row({"baseline flooding", "async KT0 CONGEST",
                   bench::fmt_f(r.metrics.time_units(), 0) + " units",
                   bench::fmt_u(r.metrics.messages), "-",
                   "rho_awk | Theta(m) | -"});
  }
  table.print();
}

// Distributions over seeds for every spec-expressible Table-1 row, computed
// in parallel by the campaign runner (deterministic for any core count).
// Set RISE_BENCH_JSON_DIR to also dump per-trial BENCH_table1_*.json.
void table1_distributions() {
  const std::size_t kSeeds = 16;
  bench::Table table({"row", "algo spec", "messages (mean +- sd)",
                      "msgs p50/p90/max", "time units (mean +- sd)",
                      "runs (fail/err)"});
  const std::vector<std::pair<std::string, std::string>> rows = {
      {"Thm 3 RankedDFS", "ranked_dfs"},
      {"Thm 4 FastWakeUp", "fast_wakeup"},
      {"Cor 1 [FIP06]", "fip06"},
      {"Thm 5(A) sqrt-threshold", "sqrt"},
      {"Thm 5(B) child-encoding", "cen"},
      {"Thm 6 spanner k=3", "spanner:3"},
      {"Cor 2 spanner k=log n", "cor2"},
      {"baseline flooding", "flooding"},
  };
  for (const auto& [name, algo] : rows) {
    app::ExperimentSpec spec;
    spec.graph = "cgnp:1000:0.008";
    spec.schedule = "random:0.2";
    spec.algorithm = algo;
    spec.delay = "unit";
    spec.seed = 2026;
    std::string artifact = "table1_" + algo;
    for (char& c : artifact) {
      if (c == ':') c = '_';
    }
    const auto result = bench::campaign_sweep(spec, kSeeds, artifact);
    const auto& t = result.total;
    table.add_row({name, algo, bench::fmt_mean_sd(t.messages, 0),
                   bench::fmt_quantiles(t.messages, 0),
                   bench::fmt_mean_sd(t.time_units, 1),
                   bench::fmt_u(t.trials) + " (" + bench::fmt_u(t.failures) +
                       "/" + bench::fmt_u(t.errors) + ")"});
  }
  table.print();
}

}  // namespace

int main() {
  bench::section("Table 1, reproduced (measured values on a shared workload)");
  table1();
  bench::section("Table 1 rows as distributions over 16 seeds (campaign "
                 "runner, all cores)");
  table1_distributions();
  std::printf(
      "\nPer-theorem n-sweeps (bench_thm*_*) establish that each measured "
      "column scales as the bracketed bound; this table is the one-page "
      "cross-section at n = 1000.\n");
  return 0;
}
