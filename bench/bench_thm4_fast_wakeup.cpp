// Table 1, row "Theorem 4": FastWakeUp in the synchronous KT1 LOCAL model.
// Claim: wake-up within 10 * rho_awk rounds, O(n^{3/2} sqrt(log n)) messages
// w.h.p.
//
// Series printed:
//   (a) n-sweep with a dominating awake set (rho_awk = 1, the hard message
//       regime): rounds <= 10, messages / (n^{3/2} sqrt(ln n)) bounded, and
//       the flooding comparison (FastWakeUp wins on messages once the graph
//       is dense enough);
//   (b) rho-sweep: wake-up span scales linearly in rho_awk with slope <= 10.
#include <cmath>
#include <cstdio>

#include "algo/fast_wakeup.hpp"
#include "algo/flooding.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "sim/sync_engine.hpp"

namespace {

using namespace rise;

sim::Instance kt1_instance(const graph::Graph& g, std::uint64_t seed) {
  sim::InstanceOptions opt;
  opt.knowledge = sim::Knowledge::KT1;
  opt.bandwidth = sim::Bandwidth::LOCAL;
  Rng rng(seed);
  return sim::Instance::create(g, opt, rng);
}

void n_sweep() {
  bench::section(
      "Theorem 4 (a): n-sweep, dominating awake set (rho_awk = 1)");
  bench::Table table({"n", "m", "rounds", "messages",
                      "msgs/(n^1.5 sqrt(ln n))", "flood msgs (2m)",
                      "fw/flood"});
  for (graph::NodeId n : {250u, 500u, 1000u, 2000u}) {
    Rng rng(n);
    // Dense-ish graph so the message bound bites: p = n^{-1/2} means
    // m ~ n^{3/2}/2 and flooding pays ~n^{3/2} while FastWakeUp subsamples.
    const double p = 1.0 / std::sqrt(static_cast<double>(n));
    const auto g = graph::connected_gnp(n, p, rng);
    const auto inst = kt1_instance(g, n + 5);
    const auto schedule = sim::dominating_set_wakeup(g);
    const auto result =
        sim::run_sync(inst, schedule, n, algo::fast_wakeup_factory());
    const double envelope = std::pow(static_cast<double>(n), 1.5) *
                            std::sqrt(std::log(static_cast<double>(n)));
    table.add_row(
        {bench::fmt_u(n), bench::fmt_u(g.num_edges()),
         bench::fmt_u(result.wakeup_span()),
         bench::fmt_u(result.metrics.messages),
         bench::fmt_f(static_cast<double>(result.metrics.messages) / envelope,
                      3),
         bench::fmt_u(2 * g.num_edges()),
         bench::fmt_f(static_cast<double>(result.metrics.messages) /
                          (2.0 * static_cast<double>(g.num_edges())),
                      3)});
  }
  table.print();
  std::printf(
      "shape check: rounds <= 10 on every row; the envelope ratio stays "
      "bounded while fw/flood falls as n grows.\n");
}

void rho_sweep() {
  bench::section("Theorem 4 (b): rho_awk-sweep on a 50x50 torus");
  const auto g = graph::torus(50, 50);
  const auto inst = kt1_instance(g, 2);
  bench::Table table({"rho_awk", "wakeup_span (rounds)", "span/rho",
                      "messages"});
  // Waking a single node at increasing torus distances from the corner
  // changes nothing; instead we vary the awake set density.
  Rng rng(5);
  struct S {
    std::string label;
    sim::WakeSchedule schedule;
  };
  std::vector<sim::WakeSchedule> schedules;
  schedules.push_back(sim::wake_single(0));                        // rho = 50
  schedules.push_back(sim::wake_set({0, 25 * 50 + 25}));           // rho ~ 25
  schedules.push_back(sim::wake_random_subset(2500, 0.01, rng));   // small rho
  schedules.push_back(sim::dominating_set_wakeup(g));              // rho = 1
  for (const auto& schedule : schedules) {
    const auto rho = sim::schedule_awake_distance(g, schedule);
    const auto result =
        sim::run_sync(inst, schedule, 9, algo::fast_wakeup_factory());
    table.add_row({bench::fmt_u(rho), bench::fmt_u(result.wakeup_span()),
                   bench::fmt_f(static_cast<double>(result.wakeup_span()) /
                                    static_cast<double>(rho),
                                2),
                   bench::fmt_u(result.metrics.messages)});
  }
  table.print();
  std::printf("shape check: span/rho <= 10 on every row (Theorem 4's 10*rho "
              "guarantee).\n");
}

}  // namespace

int main() {
  n_sweep();
  rho_sweep();
  return 0;
}
