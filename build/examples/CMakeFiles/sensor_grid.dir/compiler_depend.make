# Empty compiler generated dependencies file for sensor_grid.
# This may be replaced when dependencies are built.
