# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for wake_on_lan_datacenter.
