# Empty dependencies file for wake_on_lan_datacenter.
# This may be replaced when dependencies are built.
