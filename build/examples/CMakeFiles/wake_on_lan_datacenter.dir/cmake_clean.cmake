file(REMOVE_RECURSE
  "CMakeFiles/wake_on_lan_datacenter.dir/wake_on_lan_datacenter.cpp.o"
  "CMakeFiles/wake_on_lan_datacenter.dir/wake_on_lan_datacenter.cpp.o.d"
  "wake_on_lan_datacenter"
  "wake_on_lan_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wake_on_lan_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
