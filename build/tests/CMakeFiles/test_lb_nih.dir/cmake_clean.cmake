file(REMOVE_RECURSE
  "CMakeFiles/test_lb_nih.dir/test_lb_nih.cpp.o"
  "CMakeFiles/test_lb_nih.dir/test_lb_nih.cpp.o.d"
  "test_lb_nih"
  "test_lb_nih.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lb_nih.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
