# Empty compiler generated dependencies file for test_lb_nih.
# This may be replaced when dependencies are built.
