file(REMOVE_RECURSE
  "CMakeFiles/test_lb_beta_probing.dir/test_lb_beta_probing.cpp.o"
  "CMakeFiles/test_lb_beta_probing.dir/test_lb_beta_probing.cpp.o.d"
  "test_lb_beta_probing"
  "test_lb_beta_probing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lb_beta_probing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
