# Empty dependencies file for test_lb_beta_probing.
# This may be replaced when dependencies are built.
