# Empty dependencies file for test_app_spec.
# This may be replaced when dependencies are built.
