file(REMOVE_RECURSE
  "CMakeFiles/test_app_spec.dir/test_app_spec.cpp.o"
  "CMakeFiles/test_app_spec.dir/test_app_spec.cpp.o.d"
  "test_app_spec"
  "test_app_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
