file(REMOVE_RECURSE
  "CMakeFiles/test_algo_ranked_dfs_congest.dir/test_algo_ranked_dfs_congest.cpp.o"
  "CMakeFiles/test_algo_ranked_dfs_congest.dir/test_algo_ranked_dfs_congest.cpp.o.d"
  "test_algo_ranked_dfs_congest"
  "test_algo_ranked_dfs_congest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algo_ranked_dfs_congest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
