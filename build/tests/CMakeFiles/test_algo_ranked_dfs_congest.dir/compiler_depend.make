# Empty compiler generated dependencies file for test_algo_ranked_dfs_congest.
# This may be replaced when dependencies are built.
