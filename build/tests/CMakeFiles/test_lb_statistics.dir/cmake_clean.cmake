file(REMOVE_RECURSE
  "CMakeFiles/test_lb_statistics.dir/test_lb_statistics.cpp.o"
  "CMakeFiles/test_lb_statistics.dir/test_lb_statistics.cpp.o.d"
  "test_lb_statistics"
  "test_lb_statistics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lb_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
