# Empty dependencies file for test_fast_wakeup_internals.
# This may be replaced when dependencies are built.
