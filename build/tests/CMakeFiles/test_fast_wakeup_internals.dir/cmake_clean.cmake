file(REMOVE_RECURSE
  "CMakeFiles/test_fast_wakeup_internals.dir/test_fast_wakeup_internals.cpp.o"
  "CMakeFiles/test_fast_wakeup_internals.dir/test_fast_wakeup_internals.cpp.o.d"
  "test_fast_wakeup_internals"
  "test_fast_wakeup_internals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fast_wakeup_internals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
