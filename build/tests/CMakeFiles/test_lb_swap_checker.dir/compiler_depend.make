# Empty compiler generated dependencies file for test_lb_swap_checker.
# This may be replaced when dependencies are built.
