file(REMOVE_RECURSE
  "CMakeFiles/test_lb_swap_checker.dir/test_lb_swap_checker.cpp.o"
  "CMakeFiles/test_lb_swap_checker.dir/test_lb_swap_checker.cpp.o.d"
  "test_lb_swap_checker"
  "test_lb_swap_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lb_swap_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
