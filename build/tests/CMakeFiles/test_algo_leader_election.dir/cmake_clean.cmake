file(REMOVE_RECURSE
  "CMakeFiles/test_algo_leader_election.dir/test_algo_leader_election.cpp.o"
  "CMakeFiles/test_algo_leader_election.dir/test_algo_leader_election.cpp.o.d"
  "test_algo_leader_election"
  "test_algo_leader_election.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algo_leader_election.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
