# Empty dependencies file for test_algo_leader_election.
# This may be replaced when dependencies are built.
