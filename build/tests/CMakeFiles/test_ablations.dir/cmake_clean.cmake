file(REMOVE_RECURSE
  "CMakeFiles/test_ablations.dir/test_ablations.cpp.o"
  "CMakeFiles/test_ablations.dir/test_ablations.cpp.o.d"
  "test_ablations"
  "test_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
