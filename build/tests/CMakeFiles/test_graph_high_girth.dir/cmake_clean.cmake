file(REMOVE_RECURSE
  "CMakeFiles/test_graph_high_girth.dir/test_graph_high_girth.cpp.o"
  "CMakeFiles/test_graph_high_girth.dir/test_graph_high_girth.cpp.o.d"
  "test_graph_high_girth"
  "test_graph_high_girth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_high_girth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
