# Empty compiler generated dependencies file for test_graph_high_girth.
# This may be replaced when dependencies are built.
