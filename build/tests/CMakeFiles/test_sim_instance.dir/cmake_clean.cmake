file(REMOVE_RECURSE
  "CMakeFiles/test_sim_instance.dir/test_sim_instance.cpp.o"
  "CMakeFiles/test_sim_instance.dir/test_sim_instance.cpp.o.d"
  "test_sim_instance"
  "test_sim_instance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_instance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
