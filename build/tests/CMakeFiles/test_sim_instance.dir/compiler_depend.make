# Empty compiler generated dependencies file for test_sim_instance.
# This may be replaced when dependencies are built.
