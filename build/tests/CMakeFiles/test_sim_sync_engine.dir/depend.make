# Empty dependencies file for test_sim_sync_engine.
# This may be replaced when dependencies are built.
