# Empty dependencies file for test_algo_flooding.
# This may be replaced when dependencies are built.
