file(REMOVE_RECURSE
  "CMakeFiles/test_algo_flooding.dir/test_algo_flooding.cpp.o"
  "CMakeFiles/test_algo_flooding.dir/test_algo_flooding.cpp.o.d"
  "test_algo_flooding"
  "test_algo_flooding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algo_flooding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
