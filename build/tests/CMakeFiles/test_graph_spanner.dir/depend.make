# Empty dependencies file for test_graph_spanner.
# This may be replaced when dependencies are built.
