file(REMOVE_RECURSE
  "CMakeFiles/test_graph_spanner.dir/test_graph_spanner.cpp.o"
  "CMakeFiles/test_graph_spanner.dir/test_graph_spanner.cpp.o.d"
  "test_graph_spanner"
  "test_graph_spanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_spanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
