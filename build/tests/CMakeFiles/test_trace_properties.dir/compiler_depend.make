# Empty compiler generated dependencies file for test_trace_properties.
# This may be replaced when dependencies are built.
