# Empty compiler generated dependencies file for test_lb_time_restricted.
# This may be replaced when dependencies are built.
