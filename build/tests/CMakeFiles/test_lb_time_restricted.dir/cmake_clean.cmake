file(REMOVE_RECURSE
  "CMakeFiles/test_lb_time_restricted.dir/test_lb_time_restricted.cpp.o"
  "CMakeFiles/test_lb_time_restricted.dir/test_lb_time_restricted.cpp.o.d"
  "test_lb_time_restricted"
  "test_lb_time_restricted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lb_time_restricted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
