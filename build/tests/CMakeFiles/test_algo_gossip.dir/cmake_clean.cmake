file(REMOVE_RECURSE
  "CMakeFiles/test_algo_gossip.dir/test_algo_gossip.cpp.o"
  "CMakeFiles/test_algo_gossip.dir/test_algo_gossip.cpp.o.d"
  "test_algo_gossip"
  "test_algo_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algo_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
