# Empty dependencies file for test_algo_gossip.
# This may be replaced when dependencies are built.
