# Empty compiler generated dependencies file for test_algo_fast_wakeup.
# This may be replaced when dependencies are built.
