file(REMOVE_RECURSE
  "CMakeFiles/test_algo_fast_wakeup.dir/test_algo_fast_wakeup.cpp.o"
  "CMakeFiles/test_algo_fast_wakeup.dir/test_algo_fast_wakeup.cpp.o.d"
  "test_algo_fast_wakeup"
  "test_algo_fast_wakeup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algo_fast_wakeup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
