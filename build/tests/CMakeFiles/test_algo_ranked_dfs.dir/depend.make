# Empty dependencies file for test_algo_ranked_dfs.
# This may be replaced when dependencies are built.
