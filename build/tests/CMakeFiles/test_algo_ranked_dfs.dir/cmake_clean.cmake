file(REMOVE_RECURSE
  "CMakeFiles/test_algo_ranked_dfs.dir/test_algo_ranked_dfs.cpp.o"
  "CMakeFiles/test_algo_ranked_dfs.dir/test_algo_ranked_dfs.cpp.o.d"
  "test_algo_ranked_dfs"
  "test_algo_ranked_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algo_ranked_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
