file(REMOVE_RECURSE
  "CMakeFiles/test_support_bitio.dir/test_support_bitio.cpp.o"
  "CMakeFiles/test_support_bitio.dir/test_support_bitio.cpp.o.d"
  "test_support_bitio"
  "test_support_bitio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_bitio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
