# Empty dependencies file for test_support_bitio.
# This may be replaced when dependencies are built.
