file(REMOVE_RECURSE
  "CMakeFiles/test_advice_child_encoding.dir/test_advice_child_encoding.cpp.o"
  "CMakeFiles/test_advice_child_encoding.dir/test_advice_child_encoding.cpp.o.d"
  "test_advice_child_encoding"
  "test_advice_child_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_advice_child_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
