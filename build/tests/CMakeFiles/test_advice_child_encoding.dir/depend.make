# Empty dependencies file for test_advice_child_encoding.
# This may be replaced when dependencies are built.
