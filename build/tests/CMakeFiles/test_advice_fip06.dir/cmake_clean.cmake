file(REMOVE_RECURSE
  "CMakeFiles/test_advice_fip06.dir/test_advice_fip06.cpp.o"
  "CMakeFiles/test_advice_fip06.dir/test_advice_fip06.cpp.o.d"
  "test_advice_fip06"
  "test_advice_fip06.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_advice_fip06.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
