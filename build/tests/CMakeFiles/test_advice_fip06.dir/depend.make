# Empty dependencies file for test_advice_fip06.
# This may be replaced when dependencies are built.
