# Empty compiler generated dependencies file for test_sim_adversary.
# This may be replaced when dependencies are built.
