file(REMOVE_RECURSE
  "CMakeFiles/test_sim_adversary.dir/test_sim_adversary.cpp.o"
  "CMakeFiles/test_sim_adversary.dir/test_sim_adversary.cpp.o.d"
  "test_sim_adversary"
  "test_sim_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
