# Empty dependencies file for test_advice_robustness.
# This may be replaced when dependencies are built.
