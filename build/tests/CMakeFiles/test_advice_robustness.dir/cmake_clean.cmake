file(REMOVE_RECURSE
  "CMakeFiles/test_advice_robustness.dir/test_advice_robustness.cpp.o"
  "CMakeFiles/test_advice_robustness.dir/test_advice_robustness.cpp.o.d"
  "test_advice_robustness"
  "test_advice_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_advice_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
