# Empty compiler generated dependencies file for test_advice_sqrt_threshold.
# This may be replaced when dependencies are built.
