file(REMOVE_RECURSE
  "CMakeFiles/test_advice_sqrt_threshold.dir/test_advice_sqrt_threshold.cpp.o"
  "CMakeFiles/test_advice_sqrt_threshold.dir/test_advice_sqrt_threshold.cpp.o.d"
  "test_advice_sqrt_threshold"
  "test_advice_sqrt_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_advice_sqrt_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
