# Empty dependencies file for test_sim_async_engine.
# This may be replaced when dependencies are built.
