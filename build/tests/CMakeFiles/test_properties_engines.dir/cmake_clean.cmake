file(REMOVE_RECURSE
  "CMakeFiles/test_properties_engines.dir/test_properties_engines.cpp.o"
  "CMakeFiles/test_properties_engines.dir/test_properties_engines.cpp.o.d"
  "test_properties_engines"
  "test_properties_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
