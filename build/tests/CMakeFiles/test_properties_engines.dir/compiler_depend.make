# Empty compiler generated dependencies file for test_properties_engines.
# This may be replaced when dependencies are built.
