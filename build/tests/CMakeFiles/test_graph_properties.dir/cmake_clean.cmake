file(REMOVE_RECURSE
  "CMakeFiles/test_graph_properties.dir/test_graph_properties.cpp.o"
  "CMakeFiles/test_graph_properties.dir/test_graph_properties.cpp.o.d"
  "test_graph_properties"
  "test_graph_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
