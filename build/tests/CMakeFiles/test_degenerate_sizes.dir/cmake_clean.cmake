file(REMOVE_RECURSE
  "CMakeFiles/test_degenerate_sizes.dir/test_degenerate_sizes.cpp.o"
  "CMakeFiles/test_degenerate_sizes.dir/test_degenerate_sizes.cpp.o.d"
  "test_degenerate_sizes"
  "test_degenerate_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_degenerate_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
