# Empty dependencies file for test_degenerate_sizes.
# This may be replaced when dependencies are built.
