file(REMOVE_RECURSE
  "CMakeFiles/test_lb_graphs.dir/test_lb_graphs.cpp.o"
  "CMakeFiles/test_lb_graphs.dir/test_lb_graphs.cpp.o.d"
  "test_lb_graphs"
  "test_lb_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lb_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
