# Empty dependencies file for test_lb_graphs.
# This may be replaced when dependencies are built.
