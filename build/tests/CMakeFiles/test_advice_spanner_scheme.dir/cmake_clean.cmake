file(REMOVE_RECURSE
  "CMakeFiles/test_advice_spanner_scheme.dir/test_advice_spanner_scheme.cpp.o"
  "CMakeFiles/test_advice_spanner_scheme.dir/test_advice_spanner_scheme.cpp.o.d"
  "test_advice_spanner_scheme"
  "test_advice_spanner_scheme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_advice_spanner_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
