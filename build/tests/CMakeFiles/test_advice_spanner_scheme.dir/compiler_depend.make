# Empty compiler generated dependencies file for test_advice_spanner_scheme.
# This may be replaced when dependencies are built.
