file(REMOVE_RECURSE
  "CMakeFiles/test_support_math.dir/test_support_math.cpp.o"
  "CMakeFiles/test_support_math.dir/test_support_math.cpp.o.d"
  "test_support_math"
  "test_support_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
