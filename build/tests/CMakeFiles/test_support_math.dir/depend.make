# Empty dependencies file for test_support_math.
# This may be replaced when dependencies are built.
