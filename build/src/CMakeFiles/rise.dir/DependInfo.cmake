
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/advice/advice.cpp" "src/CMakeFiles/rise.dir/advice/advice.cpp.o" "gcc" "src/CMakeFiles/rise.dir/advice/advice.cpp.o.d"
  "/root/repo/src/advice/child_encoding.cpp" "src/CMakeFiles/rise.dir/advice/child_encoding.cpp.o" "gcc" "src/CMakeFiles/rise.dir/advice/child_encoding.cpp.o.d"
  "/root/repo/src/advice/fip06.cpp" "src/CMakeFiles/rise.dir/advice/fip06.cpp.o" "gcc" "src/CMakeFiles/rise.dir/advice/fip06.cpp.o.d"
  "/root/repo/src/advice/spanner_scheme.cpp" "src/CMakeFiles/rise.dir/advice/spanner_scheme.cpp.o" "gcc" "src/CMakeFiles/rise.dir/advice/spanner_scheme.cpp.o.d"
  "/root/repo/src/advice/sqrt_threshold.cpp" "src/CMakeFiles/rise.dir/advice/sqrt_threshold.cpp.o" "gcc" "src/CMakeFiles/rise.dir/advice/sqrt_threshold.cpp.o.d"
  "/root/repo/src/algo/fast_wakeup.cpp" "src/CMakeFiles/rise.dir/algo/fast_wakeup.cpp.o" "gcc" "src/CMakeFiles/rise.dir/algo/fast_wakeup.cpp.o.d"
  "/root/repo/src/algo/flooding.cpp" "src/CMakeFiles/rise.dir/algo/flooding.cpp.o" "gcc" "src/CMakeFiles/rise.dir/algo/flooding.cpp.o.d"
  "/root/repo/src/algo/gossip.cpp" "src/CMakeFiles/rise.dir/algo/gossip.cpp.o" "gcc" "src/CMakeFiles/rise.dir/algo/gossip.cpp.o.d"
  "/root/repo/src/algo/ranked_dfs.cpp" "src/CMakeFiles/rise.dir/algo/ranked_dfs.cpp.o" "gcc" "src/CMakeFiles/rise.dir/algo/ranked_dfs.cpp.o.d"
  "/root/repo/src/algo/ranked_dfs_congest.cpp" "src/CMakeFiles/rise.dir/algo/ranked_dfs_congest.cpp.o" "gcc" "src/CMakeFiles/rise.dir/algo/ranked_dfs_congest.cpp.o.d"
  "/root/repo/src/app/spec.cpp" "src/CMakeFiles/rise.dir/app/spec.cpp.o" "gcc" "src/CMakeFiles/rise.dir/app/spec.cpp.o.d"
  "/root/repo/src/graph/algorithms.cpp" "src/CMakeFiles/rise.dir/graph/algorithms.cpp.o" "gcc" "src/CMakeFiles/rise.dir/graph/algorithms.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/rise.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/rise.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/rise.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/rise.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/high_girth.cpp" "src/CMakeFiles/rise.dir/graph/high_girth.cpp.o" "gcc" "src/CMakeFiles/rise.dir/graph/high_girth.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/rise.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/rise.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/spanner.cpp" "src/CMakeFiles/rise.dir/graph/spanner.cpp.o" "gcc" "src/CMakeFiles/rise.dir/graph/spanner.cpp.o.d"
  "/root/repo/src/lb/beta_probing.cpp" "src/CMakeFiles/rise.dir/lb/beta_probing.cpp.o" "gcc" "src/CMakeFiles/rise.dir/lb/beta_probing.cpp.o.d"
  "/root/repo/src/lb/lower_bound_graphs.cpp" "src/CMakeFiles/rise.dir/lb/lower_bound_graphs.cpp.o" "gcc" "src/CMakeFiles/rise.dir/lb/lower_bound_graphs.cpp.o.d"
  "/root/repo/src/lb/nih.cpp" "src/CMakeFiles/rise.dir/lb/nih.cpp.o" "gcc" "src/CMakeFiles/rise.dir/lb/nih.cpp.o.d"
  "/root/repo/src/lb/swap_checker.cpp" "src/CMakeFiles/rise.dir/lb/swap_checker.cpp.o" "gcc" "src/CMakeFiles/rise.dir/lb/swap_checker.cpp.o.d"
  "/root/repo/src/lb/time_restricted.cpp" "src/CMakeFiles/rise.dir/lb/time_restricted.cpp.o" "gcc" "src/CMakeFiles/rise.dir/lb/time_restricted.cpp.o.d"
  "/root/repo/src/sim/adversary.cpp" "src/CMakeFiles/rise.dir/sim/adversary.cpp.o" "gcc" "src/CMakeFiles/rise.dir/sim/adversary.cpp.o.d"
  "/root/repo/src/sim/async_engine.cpp" "src/CMakeFiles/rise.dir/sim/async_engine.cpp.o" "gcc" "src/CMakeFiles/rise.dir/sim/async_engine.cpp.o.d"
  "/root/repo/src/sim/delay_policy.cpp" "src/CMakeFiles/rise.dir/sim/delay_policy.cpp.o" "gcc" "src/CMakeFiles/rise.dir/sim/delay_policy.cpp.o.d"
  "/root/repo/src/sim/instance.cpp" "src/CMakeFiles/rise.dir/sim/instance.cpp.o" "gcc" "src/CMakeFiles/rise.dir/sim/instance.cpp.o.d"
  "/root/repo/src/sim/message.cpp" "src/CMakeFiles/rise.dir/sim/message.cpp.o" "gcc" "src/CMakeFiles/rise.dir/sim/message.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/CMakeFiles/rise.dir/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/rise.dir/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/sync_engine.cpp" "src/CMakeFiles/rise.dir/sim/sync_engine.cpp.o" "gcc" "src/CMakeFiles/rise.dir/sim/sync_engine.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/rise.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/rise.dir/sim/trace.cpp.o.d"
  "/root/repo/src/support/bitio.cpp" "src/CMakeFiles/rise.dir/support/bitio.cpp.o" "gcc" "src/CMakeFiles/rise.dir/support/bitio.cpp.o.d"
  "/root/repo/src/support/math.cpp" "src/CMakeFiles/rise.dir/support/math.cpp.o" "gcc" "src/CMakeFiles/rise.dir/support/math.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/CMakeFiles/rise.dir/support/rng.cpp.o" "gcc" "src/CMakeFiles/rise.dir/support/rng.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/CMakeFiles/rise.dir/support/stats.cpp.o" "gcc" "src/CMakeFiles/rise.dir/support/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
