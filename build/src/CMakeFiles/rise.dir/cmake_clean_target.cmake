file(REMOVE_RECURSE
  "librise.a"
)
