# Empty dependencies file for rise.
# This may be replaced when dependencies are built.
