# Empty dependencies file for rise_cli.
# This may be replaced when dependencies are built.
