file(REMOVE_RECURSE
  "CMakeFiles/rise_cli.dir/rise_cli.cpp.o"
  "CMakeFiles/rise_cli.dir/rise_cli.cpp.o.d"
  "rise_cli"
  "rise_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rise_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
