file(REMOVE_RECURSE
  "CMakeFiles/bench_thm6_spanner.dir/bench_thm6_spanner.cpp.o"
  "CMakeFiles/bench_thm6_spanner.dir/bench_thm6_spanner.cpp.o.d"
  "bench_thm6_spanner"
  "bench_thm6_spanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm6_spanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
