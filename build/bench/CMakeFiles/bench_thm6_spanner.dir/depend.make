# Empty dependencies file for bench_thm6_spanner.
# This may be replaced when dependencies are built.
