file(REMOVE_RECURSE
  "CMakeFiles/bench_thm4_fast_wakeup.dir/bench_thm4_fast_wakeup.cpp.o"
  "CMakeFiles/bench_thm4_fast_wakeup.dir/bench_thm4_fast_wakeup.cpp.o.d"
  "bench_thm4_fast_wakeup"
  "bench_thm4_fast_wakeup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm4_fast_wakeup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
