# Empty dependencies file for bench_thm4_fast_wakeup.
# This may be replaced when dependencies are built.
