file(REMOVE_RECURSE
  "CMakeFiles/bench_thm2_tradeoff.dir/bench_thm2_tradeoff.cpp.o"
  "CMakeFiles/bench_thm2_tradeoff.dir/bench_thm2_tradeoff.cpp.o.d"
  "bench_thm2_tradeoff"
  "bench_thm2_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm2_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
