# Empty dependencies file for bench_thm2_tradeoff.
# This may be replaced when dependencies are built.
