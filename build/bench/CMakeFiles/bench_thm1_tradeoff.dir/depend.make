# Empty dependencies file for bench_thm1_tradeoff.
# This may be replaced when dependencies are built.
