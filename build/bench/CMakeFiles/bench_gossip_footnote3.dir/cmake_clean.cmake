file(REMOVE_RECURSE
  "CMakeFiles/bench_gossip_footnote3.dir/bench_gossip_footnote3.cpp.o"
  "CMakeFiles/bench_gossip_footnote3.dir/bench_gossip_footnote3.cpp.o.d"
  "bench_gossip_footnote3"
  "bench_gossip_footnote3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gossip_footnote3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
