# Empty dependencies file for bench_gossip_footnote3.
# This may be replaced when dependencies are built.
