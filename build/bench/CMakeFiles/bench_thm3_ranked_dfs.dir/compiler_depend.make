# Empty compiler generated dependencies file for bench_thm3_ranked_dfs.
# This may be replaced when dependencies are built.
