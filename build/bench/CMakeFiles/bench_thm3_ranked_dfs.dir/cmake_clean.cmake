file(REMOVE_RECURSE
  "CMakeFiles/bench_thm3_ranked_dfs.dir/bench_thm3_ranked_dfs.cpp.o"
  "CMakeFiles/bench_thm3_ranked_dfs.dir/bench_thm3_ranked_dfs.cpp.o.d"
  "bench_thm3_ranked_dfs"
  "bench_thm3_ranked_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm3_ranked_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
