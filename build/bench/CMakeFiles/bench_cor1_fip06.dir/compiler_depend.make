# Empty compiler generated dependencies file for bench_cor1_fip06.
# This may be replaced when dependencies are built.
