file(REMOVE_RECURSE
  "CMakeFiles/bench_cor1_fip06.dir/bench_cor1_fip06.cpp.o"
  "CMakeFiles/bench_cor1_fip06.dir/bench_cor1_fip06.cpp.o.d"
  "bench_cor1_fip06"
  "bench_cor1_fip06.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cor1_fip06.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
