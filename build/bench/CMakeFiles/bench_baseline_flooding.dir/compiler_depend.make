# Empty compiler generated dependencies file for bench_baseline_flooding.
# This may be replaced when dependencies are built.
