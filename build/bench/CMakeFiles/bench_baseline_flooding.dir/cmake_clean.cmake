file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_flooding.dir/bench_baseline_flooding.cpp.o"
  "CMakeFiles/bench_baseline_flooding.dir/bench_baseline_flooding.cpp.o.d"
  "bench_baseline_flooding"
  "bench_baseline_flooding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_flooding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
