# Empty dependencies file for bench_thm5_advice.
# This may be replaced when dependencies are built.
