file(REMOVE_RECURSE
  "CMakeFiles/bench_thm5_advice.dir/bench_thm5_advice.cpp.o"
  "CMakeFiles/bench_thm5_advice.dir/bench_thm5_advice.cpp.o.d"
  "bench_thm5_advice"
  "bench_thm5_advice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm5_advice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
